"""SQLite-backed store for extracted sustainability objectives."""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import shutil
import sqlite3
import time
from collections.abc import Callable, Iterable, Sequence
from pathlib import Path

from repro.goalspotter.pipeline import ExtractedRecord
from repro.normalize import normalize_details

#: Schema version written to ``PRAGMA user_version``. v2 added the
#: multi-year provenance columns (``reporting_year``,
#: ``extractor_fingerprint``) and the ``(company, reporting_year)``
#: index; v3 added the content-addressed ``record_digest`` column (and
#: its index) that makes re-publishing idempotent under durable-run
#: resume. Older databases are migrated in place on open.
SCHEMA_VERSION = 3

_SCHEMA = """
CREATE TABLE IF NOT EXISTS objectives (
    id INTEGER PRIMARY KEY AUTOINCREMENT,
    company TEXT NOT NULL,
    report_id TEXT NOT NULL,
    page INTEGER NOT NULL,
    objective TEXT NOT NULL,
    action TEXT NOT NULL DEFAULT '',
    amount TEXT NOT NULL DEFAULT '',
    qualifier TEXT NOT NULL DEFAULT '',
    baseline TEXT NOT NULL DEFAULT '',
    deadline TEXT NOT NULL DEFAULT '',
    score REAL NOT NULL DEFAULT 0.0,
    -- normalized (typed) columns, populated on insert:
    action_direction TEXT NOT NULL DEFAULT 'unknown',
    amount_kind TEXT NOT NULL DEFAULT 'unknown',
    amount_value REAL,
    baseline_year INTEGER,
    deadline_year INTEGER,
    -- v2/v3 columns (must stay last, newest last: migrations append
    -- them with ALTER TABLE, and SELECT * order feeds StoredObjective):
    reporting_year INTEGER,
    extractor_fingerprint TEXT NOT NULL DEFAULT '',
    record_digest TEXT NOT NULL DEFAULT ''
);
CREATE INDEX IF NOT EXISTS idx_objectives_company ON objectives (company);
CREATE INDEX IF NOT EXISTS idx_objectives_deadline ON objectives (deadline);
CREATE INDEX IF NOT EXISTS idx_objectives_deadline_year
    ON objectives (deadline_year);
CREATE INDEX IF NOT EXISTS idx_objectives_company_year
    ON objectives (company, reporting_year);
CREATE INDEX IF NOT EXISTS idx_objectives_digest
    ON objectives (record_digest);
"""

#: Columns appended by the v1->v2 and v2->v3 migrations, in schema order.
_V2_COLUMNS = (
    ("reporting_year", "INTEGER"),
    ("extractor_fingerprint", "TEXT NOT NULL DEFAULT ''"),
)
_V3_COLUMNS = (("record_digest", "TEXT NOT NULL DEFAULT ''"),)

def record_digest(
    record: ExtractedRecord,
    *,
    extractor_fingerprint: str = "",
    ordinal: int = 0,
) -> str:
    """Content address of one record for idempotent re-publishing.

    SHA-256 over the record's full identity: provenance (company,
    report, page, reporting year), content (objective, details in
    sorted-key order, exact score via ``float.hex``, status), the
    producing model's weight fingerprint, and ``ordinal`` — the record's
    occurrence index among byte-identical twins *within one published
    batch*, which keeps genuine duplicate rows distinct while making a
    re-publish of the same batch map onto the same digests.
    """
    payload = [
        record.company,
        record.report_id,
        int(record.page),
        getattr(record, "reporting_year", None),
        record.objective,
        sorted(record.details.items()),
        float(record.score).hex(),
        getattr(record, "status", ""),
        extractor_fingerprint,
        int(ordinal),
    ]
    return hashlib.sha256(
        json.dumps(payload, separators=(",", ":")).encode("utf-8")
    ).hexdigest()


def _batch_digests(
    records: Sequence[ExtractedRecord], extractor_fingerprint: str
) -> list[str]:
    """Per-record digests with in-batch occurrence ordinals."""
    seen: dict[str, int] = {}
    digests: list[str] = []
    for record in records:
        base = record_digest(
            record, extractor_fingerprint=extractor_fingerprint, ordinal=0
        )
        ordinal = seen.get(base, 0)
        seen[base] = ordinal + 1
        digests.append(
            base
            if ordinal == 0
            else record_digest(
                record,
                extractor_fingerprint=extractor_fingerprint,
                ordinal=ordinal,
            )
        )
    return digests


_FIELD_COLUMNS = {
    "Action": "action",
    "Amount": "amount",
    "Qualifier": "qualifier",
    "Baseline": "baseline",
    "Deadline": "deadline",
}


@dataclasses.dataclass(frozen=True)
class StoredObjective:
    """A row read back from the objectives table."""

    id: int
    company: str
    report_id: str
    page: int
    objective: str
    action: str
    amount: str
    qualifier: str
    baseline: str
    deadline: str
    score: float
    action_direction: str = "unknown"
    amount_kind: str = "unknown"
    amount_value: float | None = None
    baseline_year: int | None = None
    deadline_year: int | None = None
    reporting_year: int | None = None
    extractor_fingerprint: str = ""
    record_digest: str = ""  # v3: content address ('' on pre-v3 rows)

    @property
    def details(self) -> dict[str, str]:
        return {
            "Action": self.action,
            "Amount": self.amount,
            "Qualifier": self.qualifier,
            "Baseline": self.baseline,
            "Deadline": self.deadline,
        }

    @property
    def specificity(self) -> int:
        """How many of the five key details are filled (paper Section 5.1:
        companies 'more specific in terms of indicating the exact amount of
        change and the timeline')."""
        return sum(1 for value in self.details.values() if value)


class ObjectiveStore:
    """A structured database of extracted sustainability objectives.

    Use as a context manager or call :meth:`close` explicitly. Pass
    ``":memory:"`` (default) for an ephemeral store.
    """

    def __init__(self, path: str | Path = ":memory:") -> None:
        self._conn = sqlite3.connect(str(path))
        self._migrate()
        self._conn.executescript(_SCHEMA)
        self._conn.execute(f"PRAGMA user_version = {SCHEMA_VERSION}")
        self._conn.commit()

    def _migrate(self) -> None:
        """Bring an older database up to the current schema in place.

        v1 databases carry ``user_version`` 0 and lack the provenance
        columns; v2 lacks ``record_digest``. Missing columns are added
        via ``ALTER TABLE ADD COLUMN`` (appended last, preserving
        ``SELECT *`` order) with NULL/''-backfill — pre-v3 rows keep an
        empty digest, which the dedupe path never matches against. The
        index creation itself is idempotent via ``_SCHEMA``.
        """
        version = int(
            self._conn.execute("PRAGMA user_version").fetchone()[0]
        )
        if version >= SCHEMA_VERSION:
            return
        tables = {
            row[0]
            for row in self._conn.execute(
                "SELECT name FROM sqlite_master WHERE type = 'table'"
            )
        }
        if "objectives" not in tables:
            return  # fresh database: _SCHEMA creates everything current
        existing = {
            row[1]
            for row in self._conn.execute("PRAGMA table_info(objectives)")
        }
        with self._conn:
            for column, decl in _V2_COLUMNS + _V3_COLUMNS:
                if column not in existing:
                    self._conn.execute(
                        f"ALTER TABLE objectives ADD COLUMN {column} {decl}"
                    )

    @property
    def schema_version(self) -> int:
        """The on-disk schema version (``PRAGMA user_version``)."""
        return int(self._conn.execute("PRAGMA user_version").fetchone()[0])

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "ObjectiveStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @property
    def connection(self) -> sqlite3.Connection:
        """The underlying connection (for ad-hoc analyst queries)."""
        return self._conn

    # -- writes ----------------------------------------------------------------

    def insert_records(
        self,
        records: Iterable[ExtractedRecord],
        *,
        extractor_fingerprint: str = "",
        dedupe: bool = False,
    ) -> int:
        """Insert pipeline records (normalizing on the way in).

        ``extractor_fingerprint`` stamps every inserted row with the
        producing model's weight fingerprint
        (:meth:`repro.nn.module.Module.fingerprint`) so downstream
        multi-year analysis can tell extractor upgrades apart from
        objective drift. The per-record ``reporting_year`` (when the
        record carries one) lands in the v2 column; every row also gets
        a content-addressed :func:`record_digest` (v3 column).

        With ``dedupe=True`` records whose digest is already in the
        table are skipped — the durable-run resume path, where a crashed
        run may re-publish a batch it already committed. Batches with
        genuinely identical twin rows stay intact (occurrence ordinals
        keep the twins' digests distinct).

        Returns the number of rows actually added.
        """
        records = list(records)
        digests = _batch_digests(records, extractor_fingerprint)
        if dedupe:
            existing = {
                row[0]
                for row in self._conn.execute(
                    "SELECT record_digest FROM objectives"
                    " WHERE record_digest != ''"
                )
            }
            keep = [
                index
                for index in range(len(records))
                if digests[index] not in existing
            ]
            records = [records[index] for index in keep]
            digests = [digests[index] for index in keep]
        rows = []
        for record, digest in zip(records, digests):
            normalized = normalize_details(record.details)
            rows.append(
                (
                    record.company,
                    record.report_id,
                    record.page,
                    record.objective,
                    record.details.get("Action", ""),
                    record.details.get("Amount", ""),
                    record.details.get("Qualifier", ""),
                    record.details.get("Baseline", ""),
                    record.details.get("Deadline", ""),
                    record.score,
                    normalized.action.value,
                    normalized.amount.kind.value,
                    normalized.amount.value,
                    normalized.baseline_year,
                    normalized.deadline_year,
                    getattr(record, "reporting_year", None),
                    extractor_fingerprint,
                    digest,
                )
            )
        with self._conn:
            self._conn.executemany(
                "INSERT INTO objectives (company, report_id, page, objective,"
                " action, amount, qualifier, baseline, deadline, score,"
                " action_direction, amount_kind, amount_value,"
                " baseline_year, deadline_year,"
                " reporting_year, extractor_fingerprint, record_digest)"
                " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?,"
                " ?)",
                rows,
            )
        return len(rows)

    # -- reads -----------------------------------------------------------------

    @staticmethod
    def _row_to_objective(row: Sequence) -> StoredObjective:
        return StoredObjective(*row)

    def count(self, company: str | None = None) -> int:
        if company is None:
            cursor = self._conn.execute("SELECT COUNT(*) FROM objectives")
        else:
            cursor = self._conn.execute(
                "SELECT COUNT(*) FROM objectives WHERE company = ?",
                (company,),
            )
        return int(cursor.fetchone()[0])

    def companies(self) -> list[str]:
        cursor = self._conn.execute(
            "SELECT DISTINCT company FROM objectives ORDER BY company"
        )
        return [row[0] for row in cursor.fetchall()]

    def reporting_years(self, company: str | None = None) -> list[int]:
        """Distinct reporting years present (optionally for one company)."""
        sql = (
            "SELECT DISTINCT reporting_year FROM objectives"
            " WHERE reporting_year IS NOT NULL"
        )
        params: list = []
        if company is not None:
            sql += " AND company = ?"
            params.append(company)
        cursor = self._conn.execute(sql + " ORDER BY reporting_year", params)
        return [int(row[0]) for row in cursor.fetchall()]

    def query(
        self,
        company: str | None = None,
        has_field: str | None = None,
        deadline_before: str | None = None,
        deadline_after: str | None = None,
        min_score: float | None = None,
        reporting_year: int | None = None,
        min_reporting_year: int | None = None,
        max_reporting_year: int | None = None,
        limit: int | None = None,
        order_by_score: bool = False,
    ) -> list[StoredObjective]:
        """Filter objectives on the structured columns.

        Args:
            company: exact company filter.
            has_field: schema field name that must be non-empty
                (e.g. ``"Deadline"``).
            deadline_before / deadline_after: lexicographic year bounds
                (years are 4-digit strings, so this is chronological).
            min_score: minimum detector confidence.
            reporting_year: exact reporting-year filter (v2 column;
                hits the ``(company, reporting_year)`` index when
                combined with ``company``).
            min_reporting_year / max_reporting_year: inclusive
                reporting-year range bounds.
            limit: cap on returned rows.
            order_by_score: sort by detector confidence, best first.
        """
        clauses: list[str] = []
        params: list = []
        if company is not None:
            clauses.append("company = ?")
            params.append(company)
        if reporting_year is not None:
            clauses.append("reporting_year = ?")
            params.append(reporting_year)
        if min_reporting_year is not None:
            clauses.append(
                "reporting_year IS NOT NULL AND reporting_year >= ?"
            )
            params.append(min_reporting_year)
        if max_reporting_year is not None:
            clauses.append(
                "reporting_year IS NOT NULL AND reporting_year <= ?"
            )
            params.append(max_reporting_year)
        if has_field is not None:
            column = _FIELD_COLUMNS.get(has_field)
            if column is None:
                raise KeyError(f"unknown field {has_field!r}")
            clauses.append(f"{column} != ''")
        if deadline_before is not None:
            clauses.append("deadline != '' AND deadline <= ?")
            params.append(deadline_before)
        if deadline_after is not None:
            clauses.append("deadline != '' AND deadline >= ?")
            params.append(deadline_after)
        if min_score is not None:
            clauses.append("score >= ?")
            params.append(min_score)
        sql = "SELECT * FROM objectives"
        if clauses:
            sql += " WHERE " + " AND ".join(clauses)
        if order_by_score:
            sql += " ORDER BY score DESC"
        if limit is not None:
            sql += " LIMIT ?"
            params.append(limit)
        cursor = self._conn.execute(sql, params)
        return [self._row_to_objective(row) for row in cursor.fetchall()]

    def field_fill_rates(self) -> dict[str, float]:
        """Fraction of stored objectives with each detail filled."""
        total = self.count()
        if total == 0:
            return {field: 0.0 for field in _FIELD_COLUMNS}
        rates: dict[str, float] = {}
        for field, column in _FIELD_COLUMNS.items():
            cursor = self._conn.execute(
                f"SELECT COUNT(*) FROM objectives WHERE {column} != ''"
            )
            rates[field] = int(cursor.fetchone()[0]) / total
        return rates


def atomic_store_records(
    path: str | Path,
    records: Sequence[ExtractedRecord],
    *,
    retry_policy=None,
    fault_injector=None,
    dedupe: bool = False,
    extractor_fingerprint: str = "",
    sleep: Callable[[float], None] = time.sleep,
) -> int:
    """Insert ``records`` into the store at ``path`` atomically.

    The write happens against a temp copy of the database which then
    replaces the original via ``os.replace`` (atomic on POSIX), so a crash
    or fault at any point leaves the original file untouched — the batch
    either lands completely or not at all. Retryable under ``retry_policy``
    (a :class:`repro.runtime.resilience.RetryPolicy`); the optional
    ``fault_injector`` is checked at the ``"store"`` stage (call entry) and
    ``"store_commit"`` (after the temp write, before the rename) for crash
    simulation.

    ``dedupe=True`` makes the call idempotent: rows whose
    content-addressed :func:`record_digest` already exists in the store
    are skipped, so a resumed durable run re-publishing a batch it
    already committed never double-inserts.

    Returns the number of rows actually added.
    """
    from repro.runtime.resilience import run_stage

    path = Path(path)
    if str(path) == ":memory:":
        raise ValueError("atomic writes need a file-backed store")
    tmp = path.with_name(path.name + ".tmp")

    def attempt() -> int:
        if tmp.exists():
            tmp.unlink()
        try:
            if path.exists():
                shutil.copy2(path, tmp)
            with ObjectiveStore(tmp) as store:
                added = store.insert_records(
                    records,
                    extractor_fingerprint=extractor_fingerprint,
                    dedupe=dedupe,
                )
            with open(tmp, "rb") as handle:
                os.fsync(handle.fileno())
            if fault_injector is not None:
                fault_injector.check("store_commit")
            os.replace(tmp, path)
            # Durability of the rename itself, not just the file bytes:
            # without the directory fsync a crash can roll back os.replace.
            from repro.runtime.checkpoint import fsync_dir

            fsync_dir(path.parent)
            return added
        except BaseException:
            tmp.unlink(missing_ok=True)
            raise

    return run_stage(
        attempt,
        stage="store",
        policy=retry_policy,
        injector=fault_injector,
        sleep=sleep,
    )


def atomic_store_shards(
    path: str | Path,
    shards: Iterable,
    *,
    retry_policy=None,
    fault_injector=None,
    dedupe: bool = False,
    extractor_fingerprint: str = "",
    sleep: Callable[[float], None] = time.sleep,
) -> list[int]:
    """Commit per-shard record batches, one atomic write per shard.

    The durable companion to :mod:`repro.runtime.parallel`: each shard's
    records land via :func:`atomic_store_records` (temp copy + fsync +
    ``os.replace``), in shard order, so a crash mid-corpus leaves every
    previously committed shard durable and the failing shard entirely
    unapplied — never a torn batch. ``shards`` may hold plain record
    sequences or :class:`~repro.runtime.parallel.ShardResult` objects
    (their ``records`` are used).

    Returns rows added per shard, in shard order.
    """
    counts: list[int] = []
    for shard in shards:
        records = getattr(shard, "records", shard)
        counts.append(
            atomic_store_records(
                path,
                records,
                retry_policy=retry_policy,
                fault_injector=fault_injector,
                dedupe=dedupe,
                extractor_fingerprint=extractor_fingerprint,
                sleep=sleep,
            )
        )
    return counts
