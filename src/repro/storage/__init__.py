"""Structured objective database (the paper's motivating use case).

Domain experts "store these structured data in databases to compare
different target companies, monitor their progress toward their
sustainability goals, and evaluate companies" (Section 5.1). This package
provides that database: a SQLite-backed store with a typed schema over the
five key details, plus the monitoring/comparison queries the paper
describes (specificity, deadline timelines, company comparison).
"""

from repro.storage.store import (
    ObjectiveStore,
    SCHEMA_VERSION,
    StoredObjective,
    atomic_store_records,
    atomic_store_shards,
    record_digest,
)
from repro.storage.monitor import (
    company_comparison,
    deadline_timeline,
    horizon_statistics,
    net_zero_pledges,
    reduction_targets,
    specificity_ranking,
)

__all__ = [
    "ObjectiveStore",
    "SCHEMA_VERSION",
    "StoredObjective",
    "atomic_store_records",
    "atomic_store_shards",
    "company_comparison",
    "deadline_timeline",
    "horizon_statistics",
    "net_zero_pledges",
    "record_digest",
    "reduction_targets",
    "specificity_ranking",
]
