"""Analyst monitoring queries over the objective store.

These implement the analyses the paper attributes to domain experts
(Section 5.1): comparing companies, ranking them by how *specific* their
objectives are (exact amounts and timelines), and building deadline
timelines so claimed commitments can be tracked over time.
"""

from __future__ import annotations

import dataclasses

from repro.storage.store import ObjectiveStore


@dataclasses.dataclass(frozen=True)
class CompanyStats:
    """Aggregate per-company extraction statistics."""

    company: str
    objectives: int
    with_amount: int
    with_deadline: int
    with_baseline: int
    mean_specificity: float


def company_comparison(store: ObjectiveStore) -> list[CompanyStats]:
    """Per-company aggregates, ordered by objective count (descending)."""
    cursor = store.connection.execute(
        """
        SELECT company,
               COUNT(*),
               SUM(amount != ''),
               SUM(deadline != ''),
               SUM(baseline != ''),
               AVG((action != '') + (amount != '') + (qualifier != '')
                   + (baseline != '') + (deadline != ''))
        FROM objectives
        GROUP BY company
        ORDER BY COUNT(*) DESC
        """
    )
    return [
        CompanyStats(
            company=row[0],
            objectives=int(row[1]),
            with_amount=int(row[2] or 0),
            with_deadline=int(row[3] or 0),
            with_baseline=int(row[4] or 0),
            mean_specificity=float(row[5] or 0.0),
        )
        for row in cursor.fetchall()
    ]


def specificity_ranking(store: ObjectiveStore) -> list[tuple[str, float]]:
    """Companies ranked by mean specificity of their objectives.

    The paper singles out companies "more specific in terms of indicating
    the exact amount of change and the timeline" (C12, C13 in Table 6).
    """
    stats = company_comparison(store)
    return sorted(
        ((s.company, s.mean_specificity) for s in stats),
        key=lambda item: item[1],
        reverse=True,
    )


def deadline_timeline(store: ObjectiveStore) -> dict[str, int]:
    """Number of commitments falling due per deadline year."""
    cursor = store.connection.execute(
        """
        SELECT deadline, COUNT(*)
        FROM objectives
        WHERE deadline != ''
        GROUP BY deadline
        ORDER BY deadline
        """
    )
    return {row[0]: int(row[1]) for row in cursor.fetchall()}


def net_zero_pledges(store: ObjectiveStore) -> list[tuple[str, int | None]]:
    """Companies with net-zero style pledges and their (typed) deadline.

    Uses the normalized ``amount_kind``/``deadline_year`` columns, so the
    query is robust to surface-form variety ("net-zero", "net zero",
    "carbon neutral", "Zero").
    """
    cursor = store.connection.execute(
        """
        SELECT company, deadline_year
        FROM objectives
        WHERE amount_kind = 'net_zero'
        ORDER BY deadline_year IS NULL, deadline_year, company
        """
    )
    return [(row[0], row[1]) for row in cursor.fetchall()]


def reduction_targets(
    store: ObjectiveStore, min_percent: float = 0.0
) -> list[tuple[str, float, int | None]]:
    """Quantified percentage reductions: (company, percent, deadline year).

    The analyst query behind "which companies commit to cutting at least
    X% of something, and by when" — only possible on normalized columns.
    """
    cursor = store.connection.execute(
        """
        SELECT company, amount_value, deadline_year
        FROM objectives
        WHERE amount_kind = 'percent'
          AND action_direction = 'decrease'
          AND amount_value >= ?
        ORDER BY amount_value DESC
        """,
        (min_percent,),
    )
    return [(row[0], float(row[1]), row[2]) for row in cursor.fetchall()]


def horizon_statistics(store: ObjectiveStore) -> dict[str, float]:
    """Aggregate statistics of commitment horizons (deadline - baseline)."""
    cursor = store.connection.execute(
        """
        SELECT COUNT(*),
               AVG(deadline_year - baseline_year),
               MIN(deadline_year - baseline_year),
               MAX(deadline_year - baseline_year)
        FROM objectives
        WHERE deadline_year IS NOT NULL AND baseline_year IS NOT NULL
        """
    )
    count, mean, minimum, maximum = cursor.fetchone()
    if not count:
        return {"count": 0.0, "mean": 0.0, "min": 0.0, "max": 0.0}
    return {
        "count": float(count),
        "mean": float(mean),
        "min": float(minimum),
        "max": float(maximum),
    }
