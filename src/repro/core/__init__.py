"""The paper's primary contribution: weak-supervision detail extraction.

Pipeline (Figure 2 of the paper):

*Development phase* — objectives with coarse key-value annotations are
word-tokenized; Algorithm 1 (:mod:`repro.core.weak_labeling`) aligns each
annotated value against the token sequence and emits IOB token labels; the
labels are projected onto BPE subword pieces
(:mod:`repro.core.alignment`) and a transformer token classifier is
fine-tuned on them.

*Production phase* — a new objective is tokenized the same way, the model
predicts a label per piece, predictions are folded back to word level, and
IOB spans are decoded into field values (:mod:`repro.core.decoding`).

:class:`repro.core.extractor.WeakSupervisionExtractor` is the public entry
point tying the phases together.
"""

from repro.core.schema import (
    AnnotatedObjective,
    NETZEROFACTS_FIELDS,
    SUSTAINABILITY_FIELDS,
)
from repro.core.iob import LabelScheme, Span, iob_to_spans, spans_to_iob
from repro.core.matching import (
    ExactMatcher,
    FuzzyMatcher,
    LowercaseMatcher,
    TokenMatcher,
)
from repro.core.weak_labeling import (
    WeakLabelingStats,
    weak_token_labels,
    weakly_label_objective,
)
from repro.core.alignment import (
    pieces_to_word_labels,
    word_labels_to_piece_targets,
)
from repro.core.decoding import decode_details
from repro.core.conll import export_weak_labels, format_conll, import_conll
from repro.core.segmentation import segment_objectives
from repro.core.constrained import constrained_decode
from repro.core.base import DetailExtractor
from repro.core.extractor import (
    ExtractorConfig,
    WeakSupervisionExtractor,
)

__all__ = [
    "AnnotatedObjective",
    "DetailExtractor",
    "ExactMatcher",
    "ExtractorConfig",
    "FuzzyMatcher",
    "LabelScheme",
    "LowercaseMatcher",
    "NETZEROFACTS_FIELDS",
    "SUSTAINABILITY_FIELDS",
    "Span",
    "TokenMatcher",
    "WeakLabelingStats",
    "WeakSupervisionExtractor",
    "constrained_decode",
    "decode_details",
    "export_weak_labels",
    "format_conll",
    "import_conll",
    "iob_to_spans",
    "pieces_to_word_labels",
    "segment_objectives",
    "spans_to_iob",
    "weak_token_labels",
    "weakly_label_objective",
    "word_labels_to_piece_targets",
]
