"""Common interface implemented by every detail-extraction approach.

Table 4 of the paper compares four approaches (CRF, zero-shot prompting,
few-shot prompting, and the weakly supervised transformer). Each one
implements this interface so the evaluation protocol and the deployment
pipeline are approach-agnostic.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.schema import AnnotatedObjective


class DetailExtractor:
    """Abstract detail extractor: fit on annotated objectives, extract."""

    #: Human-readable approach name (used in result tables).
    name: str = "abstract"

    def fit(self, objectives: Sequence[AnnotatedObjective]) -> "DetailExtractor":
        """Train on coarse objective-level annotations; returns self."""
        raise NotImplementedError

    def extract(self, text: str) -> dict[str, str]:
        """Extract the key details of one objective.

        Returns a dict with one entry per schema field; missing details map
        to ``""``.
        """
        raise NotImplementedError

    def extract_batch(self, texts: Sequence[str]) -> list[dict[str, str]]:
        """Extract details for many objectives (default: one at a time)."""
        return [self.extract(text) for text in texts]
