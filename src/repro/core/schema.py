"""Data schema: annotated objectives and the field sets of both datasets."""

from __future__ import annotations

import dataclasses
from collections.abc import Mapping

#: The five key details of a sustainability objective (paper Section 2.2).
SUSTAINABILITY_FIELDS: tuple[str, ...] = (
    "Action",
    "Amount",
    "Qualifier",
    "Baseline",
    "Deadline",
)

#: The emission-goal fields of the NetZeroFacts benchmark (Wrzalik et al.).
NETZEROFACTS_FIELDS: tuple[str, ...] = (
    "TargetValue",
    "ReferenceYear",
    "TargetYear",
)

#: EU-Taxonomy KPI disclosure fields (Schmoll & Jatowt): which KPI the
#: sentence reports (turnover / CapEx / OpEx), the Taxonomy-aligned share,
#: and the fiscal year of the disclosure. Values are verbatim substrings,
#: so Algorithm 1 weak labeling applies unchanged.
TAXONOMY_KPI_FIELDS: tuple[str, ...] = (
    "Kpi",
    "AlignedShare",
    "FiscalYear",
)


@dataclasses.dataclass(frozen=True)
class AnnotatedObjective:
    """A sustainability objective with coarse objective-level annotations.

    This is the paper's training unit (Figure 3): the full objective text
    plus a partial set of key-value annotations. Values are verbatim (or
    near-verbatim, in the fuzzy setting) substrings of the text; missing
    details are simply absent from ``details`` (or mapped to ``""``).

    Attributes:
        text: the objective sentence/block.
        details: mapping from field name to annotated value.
        company: optional provenance (used by deployment scenarios).
        report_id: optional provenance.
    """

    text: str
    details: Mapping[str, str] = dataclasses.field(default_factory=dict)
    company: str = ""
    report_id: str = ""

    def __post_init__(self) -> None:
        if not self.text or not self.text.strip():
            raise ValueError("objective text must be non-empty")
        # Freeze the mapping so instances are safely hashable-by-identity
        # and never mutated by downstream code.
        object.__setattr__(self, "details", dict(self.details))

    def present_details(self) -> dict[str, str]:
        """Annotated key-value pairs with empty values dropped."""
        return {k: v for k, v in self.details.items() if v and v.strip()}

    def has_detail(self, field: str) -> bool:
        value = self.details.get(field, "")
        return bool(value and value.strip())
