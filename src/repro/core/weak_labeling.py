"""Algorithm 1: WeakSupervisionTokenLabeling.

Converts coarse objective-level annotations into token-level IOB labels:

1. tokenize the objective into ``T = [t_1, ..., t_|T|]``;
2. initialize all weak labels to ``O``;
3. for each annotated ``(k, v)``: tokenize ``v`` into ``U``, search for the
   starting index ``s`` of ``U`` inside ``T``; if found, label ``T[s]`` as
   ``B-k`` and ``T[s+1 .. s+|U|-1]`` as ``I-k``.

Two reproduction-relevant details beyond the paper's pseudocode:

* a match never overwrites tokens already labeled by an earlier annotation
  (the ``forbidden`` mask passed to the matcher) — without this, overlapping
  values such as Amount "20%" inside Qualifier "20% by 2025" would corrupt
  earlier labels and produce ill-formed IOB;
* annotations are processed longest-value-first so that a short value that
  also occurs inside a longer one (e.g. a year that appears in both Baseline
  and a Qualifier phrase) lands on its own occurrence.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Mapping

from repro.core.iob import OUTSIDE
from repro.core.matching import ExactMatcher, TokenMatcher
from repro.core.schema import AnnotatedObjective
from repro.text.words import Token, WordTokenizer

_DEFAULT_MATCHER = ExactMatcher()
_DEFAULT_TOKENIZER = WordTokenizer()


@dataclasses.dataclass
class WeakLabelingStats:
    """Bookkeeping for weak-label quality analysis.

    Attributes:
        annotations_total: key-value pairs offered to the algorithm.
        annotations_matched: pairs for which a token match was found.
        unmatched: the ``(field, value)`` pairs that found no match.
    """

    annotations_total: int = 0
    annotations_matched: int = 0
    unmatched: list[tuple[str, str]] = dataclasses.field(default_factory=list)

    @property
    def coverage(self) -> float:
        """Fraction of annotations converted into token labels."""
        if self.annotations_total == 0:
            return 1.0
        return self.annotations_matched / self.annotations_total

    def merge(self, other: "WeakLabelingStats") -> None:
        self.annotations_total += other.annotations_total
        self.annotations_matched += other.annotations_matched
        self.unmatched.extend(other.unmatched)


def weak_token_labels(
    tokens: list[str],
    annotations: Mapping[str, str],
    matcher: TokenMatcher | None = None,
    value_tokenizer: WordTokenizer | None = None,
    stats: WeakLabelingStats | None = None,
) -> list[str]:
    """Algorithm 1 over a pre-tokenized objective.

    Args:
        tokens: token surface forms of the objective (``T``).
        annotations: objective-level key-value annotations (``A``).
        matcher: subsequence matcher for line 5 (exact by default).
        value_tokenizer: tokenizer applied to annotation values (line 4);
            must be the one used to produce ``tokens``.
        stats: optional accumulator recording match coverage.

    Returns:
        IOB labels ``L`` with ``len(L) == len(tokens)``.
    """
    matcher = matcher or _DEFAULT_MATCHER
    value_tokenizer = value_tokenizer or _DEFAULT_TOKENIZER
    labels = [OUTSIDE] * len(tokens)
    taken = [False] * len(tokens)

    items = [
        (field, value)
        for field, value in annotations.items()
        if value and value.strip()
    ]
    # Longest value first; ties broken by field name for determinism.
    items.sort(key=lambda item: (-len(item[1]), item[0]))

    for field, value in items:
        if stats is not None:
            stats.annotations_total += 1
        value_tokens = value_tokenizer.words(value)
        if not value_tokens:
            if stats is not None:
                stats.unmatched.append((field, value))
            continue
        start = matcher.find(tokens, value_tokens, forbidden=taken)
        if start == -1:
            if stats is not None:
                stats.unmatched.append((field, value))
            continue
        labels[start] = f"B-{field}"
        taken[start] = True
        for offset in range(1, len(value_tokens)):
            labels[start + offset] = f"I-{field}"
            taken[start + offset] = True
        if stats is not None:
            stats.annotations_matched += 1
    return labels


def weakly_label_objective(
    objective: AnnotatedObjective,
    word_tokenizer: WordTokenizer | None = None,
    matcher: TokenMatcher | None = None,
    stats: WeakLabelingStats | None = None,
) -> tuple[list[Token], list[str]]:
    """Tokenize an annotated objective and run Algorithm 1.

    Returns ``(tokens_with_offsets, iob_labels)``.
    """
    word_tokenizer = word_tokenizer or _DEFAULT_TOKENIZER
    tokens = word_tokenizer.tokenize(objective.text)
    labels = weak_token_labels(
        [token.text for token in tokens],
        objective.present_details(),
        matcher=matcher,
        value_tokenizer=word_tokenizer,
        stats=stats,
    )
    return tokens, labels
