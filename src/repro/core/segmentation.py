"""Objective segmentation (paper future work: 'objective segmentation').

Multi-target sentences — "Reduce X by 20%, and expand Y across all sites" —
partially confuse the extraction model (paper Section 5.3). Segmentation
splits a detected objective block into candidate objective clauses so each
can be extracted independently.

Splitting is conservative: sentence boundaries always split; coordinating
", and " / "; " boundaries split only when both sides look like objective
clauses (contain a verb-ish token or a quantity), so qualifier phrases that
merely contain "and" are never broken apart.
"""

from __future__ import annotations

import re

from repro.text.words import WordTokenizer

_SENTENCE_SPLIT_RE = re.compile(r"(?<=[.!?])\s+(?=[A-Z0-9])")
_COORD_SPLIT_RE = re.compile(r",\s+and\s+|;\s+")
_QUANTITY_RE = re.compile(r"\d|%|\bnet[- ]?zero\b", re.IGNORECASE)

_WORD_TOKENIZER = WordTokenizer()

#: Words that suggest a clause states an objective (imperative verbs and
#: commitment language); lowercase.
_OBJECTIVE_CUES = {
    "reduce", "achieve", "increase", "improve", "expand", "implement",
    "promote", "develop", "establish", "strengthen", "maintain", "deliver",
    "launch", "support", "integrate", "accelerate", "advance", "cut",
    "lower", "decrease", "reach", "eliminate", "offset", "halve", "restore",
    "replenish", "conserve", "recycle", "divert", "transition", "convert",
    "redesign", "shift", "double", "prevent", "audit", "engage", "assess",
    "certify", "require", "empower", "train", "invest", "donate", "protect",
    "plant", "preserve", "keep", "reuse", "extend", "recover", "align",
    "define", "publish", "embed", "substitute", "commit", "committed",
    "pledge", "aim", "will", "source", "procure",
}


def _looks_like_objective_clause(clause: str) -> bool:
    """Heuristic: a clause is objective-like if it has a cue verb or a
    quantity."""
    if _QUANTITY_RE.search(clause):
        return True
    words = {word.lower() for word in _WORD_TOKENIZER.words(clause)}
    return bool(words & _OBJECTIVE_CUES)


def split_sentences(text: str) -> list[str]:
    """Split a text block into sentences (period/question/exclamation)."""
    parts = [part.strip() for part in _SENTENCE_SPLIT_RE.split(text)]
    return [part for part in parts if part]


def segment_objectives(text: str) -> list[str]:
    """Split a block into candidate objective clauses.

    Sentences are always separated; within a sentence, coordinating
    boundaries split only when both sides independently look like
    objective clauses. Clauses that look like pure narrative are dropped
    when at least one objective-like clause exists.
    """
    candidates: list[str] = []
    for sentence in split_sentences(text):
        pieces = [piece.strip(" ,;") for piece in _COORD_SPLIT_RE.split(sentence)]
        pieces = [piece for piece in pieces if piece]
        if len(pieces) > 1 and all(
            _looks_like_objective_clause(piece) for piece in pieces
        ):
            candidates.extend(
                piece if piece.endswith((".", "!", "?")) else piece + "."
                for piece in pieces
            )
        else:
            candidates.append(sentence)
    objective_like = [
        clause for clause in candidates if _looks_like_objective_clause(clause)
    ]
    return objective_like or candidates
