"""IOB-constrained decoding over token-classifier logits.

Independent per-token argmax can emit ill-formed label sequences (an
``I-f`` with no open span) and ragged spans (an ``O`` dropped in the middle
of an entity). Constrained Viterbi finds the highest-scoring label sequence
that is *well-formed* under the IOB grammar:

* the sequence starts with ``O`` or any ``B-f``;
* ``I-f`` may only follow ``B-f`` or ``I-f`` of the same field;
* everything else is unconstrained.

Scores are the model's raw per-token logits (no learned transitions), so
this is pure structured inference on top of the fine-tuned model.
"""

from __future__ import annotations

import numpy as np

from repro.core.iob import LabelScheme

_NEG_INF = -1e30


def transition_mask(scheme: LabelScheme) -> np.ndarray:
    """``(L, L)`` matrix: 0 where the transition is legal, -inf where not."""
    size = len(scheme)
    mask = np.zeros((size, size))
    for previous_id, previous in enumerate(scheme.labels):
        for current_id, current in enumerate(scheme.labels):
            if not current.startswith("I-"):
                continue
            field = current[2:]
            legal = previous in (f"B-{field}", f"I-{field}")
            if not legal:
                mask[previous_id, current_id] = _NEG_INF
    return mask


def start_mask(scheme: LabelScheme) -> np.ndarray:
    """``(L,)`` vector: -inf on labels that cannot start a sequence."""
    mask = np.zeros(len(scheme))
    for label_id, label in enumerate(scheme.labels):
        if label.startswith("I-"):
            mask[label_id] = _NEG_INF
    return mask


def constrained_decode(
    logits: np.ndarray, scheme: LabelScheme
) -> np.ndarray:
    """Highest-scoring well-formed IOB sequence for ``(T, L)`` logits."""
    logits = np.asarray(logits, dtype=np.float64)
    length, size = logits.shape
    if size != len(scheme):
        raise ValueError(
            f"logits have {size} labels, scheme has {len(scheme)}"
        )
    if length == 0:
        return np.zeros(0, dtype=np.int64)
    transitions = transition_mask(scheme)
    delta = logits[0] + start_mask(scheme)
    backpointers = np.zeros((length, size), dtype=np.int64)
    for position in range(1, length):
        scores = delta[:, None] + transitions
        backpointers[position] = scores.argmax(axis=0)
        delta = scores.max(axis=0) + logits[position]
    best = int(delta.argmax())
    path = [best]
    for position in range(length - 1, 0, -1):
        best = int(backpointers[position, best])
        path.append(best)
    path.reverse()
    return np.asarray(path, dtype=np.int64)
