"""The public weak-supervision detail extractor (the paper's system).

Development phase (``fit``): normalize → word-tokenize → Algorithm 1 weak
labels → BPE-encode → project labels to pieces → fine-tune the transformer.

Production phase (``extract``): normalize → word-tokenize → BPE-encode →
predict piece labels → fold to word labels → decode spans → field values.
"""

from __future__ import annotations

import dataclasses
import json
import shutil
import threading
from collections import OrderedDict
from collections.abc import Sequence
from pathlib import Path

import numpy as np

from repro.core.alignment import (
    pieces_to_word_labels,
    word_labels_to_piece_targets,
)
from repro.core.base import DetailExtractor
from repro.core.constrained import constrained_decode
from repro.core.decoding import decode_details
from repro.core.iob import LabelScheme
from repro.core.matching import (
    ExactMatcher,
    FuzzyMatcher,
    LowercaseMatcher,
    TokenMatcher,
)
from repro.core.schema import SUSTAINABILITY_FIELDS, AnnotatedObjective
from repro.core.weak_labeling import WeakLabelingStats, weakly_label_objective
from repro.models.token_classifier import TokenClassifier
from repro.models.training import FineTuneConfig, fit_token_classifier
from repro.models.zoo import get_model_spec
from repro.nn.encoder import TransformerEncoder
from repro.nn.serialize import load_state, save_state
from repro.runtime.checkpoint import (
    CheckpointManager,
    read_json,
    replace_dir,
    verify_manifest,
    write_manifest,
)
from repro.runtime.errors import ArtifactError, QuantizationError
from repro.runtime.profiling import PerfCounters, RunStats
from repro.runtime.rescache import ResultCache
from repro.text.bpe import BpeTokenizer
from repro.text.normalize import TextNormalizer
from repro.text.words import WordTokenizer

_MATCHERS = {
    "exact": ExactMatcher,
    "lowercase": LowercaseMatcher,
    "fuzzy": FuzzyMatcher,
}


@dataclasses.dataclass(frozen=True)
class ExtractorConfig:
    """Configuration of :class:`WeakSupervisionExtractor`.

    Defaults mirror the paper's prototype (Section 3.3) plus the measured
    best recipe on this substrate: RoBERTa-style encoder, 10 epochs, Adam,
    batch size 16, exact matching in Algorithm 1, all-piece subword
    supervision, O-class down-weighting, and IOB-constrained decoding
    (each ablated in ``benchmarks/bench_ablation_weak_labeling.py``).
    """

    fields: tuple[str, ...] = SUSTAINABILITY_FIELDS
    model: str = "roberta"
    finetune: FineTuneConfig = dataclasses.field(default_factory=FineTuneConfig)
    matcher: str = "exact"
    subword_strategy: str = "all"
    span_policy: str = "longest"
    constrained_decoding: bool = True
    outside_weight: float = 0.35
    max_len: int = 96
    num_merges: int = 600
    normalize: bool = True
    seed: int = 13
    #: Production batching: "bucketed" length-sorts sequences and packs
    #: microbatches under ``token_budget`` padded tokens; "arrival" keeps
    #: the naive fixed-row chunking (the pre-runtime behaviour).
    batching: str = "bucketed"
    token_budget: int = 4096
    #: Numeric inference path: ``None`` keeps fp32; ``"int8"`` attaches the
    #: quantized encoder path on first use (raw switch — the *gated* entry
    #: point is :meth:`WeakSupervisionExtractor.enable_quantization`, which
    #: only flips this after the equivalence gate passes).
    quantize: str | None = None
    #: Content-addressed result cache over ``predict_logits``: 0 disables
    #: it (the default — identical behaviour to earlier releases), any
    #: positive value bounds the number of cached per-sequence results.
    result_cache_capacity: int = 0
    #: Seed of the cache's deterministic random-replacement eviction.
    result_cache_seed: int = 0

    def __post_init__(self) -> None:
        if not self.fields:
            raise ValueError("fields must be non-empty")
        if self.matcher not in _MATCHERS:
            raise ValueError(
                f"unknown matcher {self.matcher!r}; use {sorted(_MATCHERS)}"
            )
        if self.outside_weight <= 0:
            raise ValueError("outside_weight must be positive")
        if self.batching not in ("bucketed", "arrival"):
            raise ValueError(
                f"unknown batching {self.batching!r}; "
                "use 'bucketed' or 'arrival'"
            )
        if self.token_budget <= 0:
            raise ValueError("token_budget must be positive")
        if self.quantize not in (None, "int8"):
            raise ValueError(
                f"unknown quantize mode {self.quantize!r}; use None or 'int8'"
            )
        if self.result_cache_capacity < 0:
            raise ValueError("result_cache_capacity must be >= 0")

    def build_matcher(self) -> TokenMatcher:
        return _MATCHERS[self.matcher]()


class WeakSupervisionExtractor(DetailExtractor):
    """Weakly supervised transformer extractor — the paper's contribution.

    Example:
        >>> extractor = WeakSupervisionExtractor()
        >>> extractor.fit(training_objectives)      # doctest: +SKIP
        >>> extractor.extract("Reduce waste by 20% by 2030")  # doctest: +SKIP
        {'Action': 'Reduce', 'Amount': '20%', 'Qualifier': 'waste',
         'Baseline': '', 'Deadline': '2030'}
    """

    name = "GoalSpotter"

    def __init__(
        self,
        config: ExtractorConfig | None = None,
        tokenizer: BpeTokenizer | None = None,
        pretrained_encoder: TransformerEncoder | None = None,
    ) -> None:
        self.config = config or ExtractorConfig()
        self.scheme = LabelScheme(self.config.fields)
        self.normalizer = TextNormalizer()
        self.word_tokenizer = WordTokenizer()
        self.matcher = self.config.build_matcher()
        self.tokenizer = tokenizer
        self._pretrained_encoder = pretrained_encoder
        self.model: TokenClassifier | None = None
        #: Weak-labeling coverage stats from the last ``fit`` call.
        self.weak_stats = WeakLabelingStats()
        self.loss_history: list[float] = []
        #: Runtime observability from the last *completed* ``extract_batch``
        #: call. Under concurrent serving workers overlapping calls each
        #: publish here last-writer-wins; ``total_run_stats`` below is the
        #: merge-safe aggregate that never loses a run.
        self.last_run_stats: RunStats | None = None
        #: Merged stats across every ``extract_batch`` call (lock-guarded).
        self.total_run_stats = RunStats()
        #: Optional chaos hooks (``repro.runtime.resilience.FaultInjector``):
        #: checked at the "tokenize" and "forward" stages of extract_batch.
        self.fault_injector = None
        self._normalize_cache: OrderedDict[str, str] = OrderedDict()
        self._normalize_cache_size = 4096
        #: Content-addressed result cache (lazily built from the config;
        #: the CLI replaces ``self.config`` after construction, so the
        #: cache resolves against the *current* capacity/seed per call).
        self._result_cache: ResultCache | None = None
        self._result_cache_key: tuple[int, int] | None = None
        # Shared by concurrent serving workers: the OrderedDict LRU
        # reorder/evict and hit/miss counters mutate under this lock.
        self._normalize_lock = threading.Lock()
        self._normalize_hits = 0
        self._normalize_misses = 0
        self._stats_lock = threading.Lock()

    def __getstate__(self) -> dict:
        # Parallel shard workers receive a copy of the extractor; locks
        # don't pickle and caches are value-transparent, so the copy
        # starts with fresh ones (results are unaffected).
        state = self.__dict__.copy()
        del state["_normalize_lock"]
        del state["_stats_lock"]
        state["_normalize_cache"] = OrderedDict()
        state["_normalize_hits"] = 0
        state["_normalize_misses"] = 0
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._normalize_lock = threading.Lock()
        self._stats_lock = threading.Lock()

    def build_model(self, encoder_config=None) -> TokenClassifier:
        """A freshly initialized token classifier shaped for this config.

        Requires a fitted tokenizer (the vocabulary fixes the embedding
        shape). ``encoder_config`` overrides the model-zoo-derived encoder
        geometry — the parallel runtime's broadcast passes the fitted
        model's actual config so pretrained/distilled encoders rebuild
        with the right shapes. Used by :meth:`load` and the broadcast
        restore path; weights are expected to be loaded over the top.
        """
        if self.tokenizer is None:
            raise RuntimeError("tokenizer is not fitted; call fit() first")
        if encoder_config is None:
            spec = get_model_spec(self.config.model)
            encoder_config = spec.encoder_config(
                len(self.tokenizer.vocab), self.config.max_len
            )
        rng = np.random.default_rng(self.config.seed)
        return TokenClassifier(encoder_config, len(self.scheme), rng)

    # -- development phase -------------------------------------------------

    def _normalize(self, text: str) -> str:
        return self.normalizer(text) if self.config.normalize else text

    def _normalize_cached(self, text: str) -> str:
        """Production-path normalization with a bounded LRU memo.

        Report corpora repeat blocks (headers, boilerplate objectives), so
        the production path memoizes normalization; ``fit`` keeps the
        uncached :meth:`_normalize` since training corpora are seen once.
        """
        if not self.config.normalize:
            return text
        with self._normalize_lock:
            cached = self._normalize_cache.get(text)
            if cached is not None:
                self._normalize_cache.move_to_end(text)
                self._normalize_hits += 1
                return cached
        # Compute before counting/caching so a raised fault leaves the
        # cache and its hit/miss accounting untouched (and concurrent
        # duplicate misses write identical values — harmless).
        normalized = self.normalizer(text)
        with self._normalize_lock:
            self._normalize_misses += 1
            self._normalize_cache[text] = normalized
            if len(self._normalize_cache) > self._normalize_cache_size:
                self._normalize_cache.popitem(last=False)
        return normalized

    def _normalize_objective(
        self, objective: AnnotatedObjective
    ) -> AnnotatedObjective:
        if not self.config.normalize:
            return objective
        return AnnotatedObjective(
            text=self._normalize(objective.text),
            details={
                field: self._normalize(value)
                for field, value in objective.details.items()
            },
            company=objective.company,
            report_id=objective.report_id,
        )

    def prepare_weak_labels(
        self, objectives: Sequence[AnnotatedObjective]
    ) -> tuple[list[list[str]], list[list[str]]]:
        """Step 1+2 of the development phase (tokenize + Algorithm 1).

        Returns parallel lists of word sequences and IOB label sequences.
        Exposed publicly so the weak-labeling quality can be inspected and
        benchmarked independently of model training.
        """
        word_sequences: list[list[str]] = []
        label_sequences: list[list[str]] = []
        self.weak_stats = WeakLabelingStats()
        for objective in objectives:
            normalized = self._normalize_objective(objective)
            tokens, labels = weakly_label_objective(
                normalized,
                word_tokenizer=self.word_tokenizer,
                matcher=self.matcher,
                stats=self.weak_stats,
            )
            word_sequences.append([token.text for token in tokens])
            label_sequences.append(labels)
        return word_sequences, label_sequences

    def fit(
        self,
        objectives: Sequence[AnnotatedObjective],
        checkpoint: CheckpointManager | None = None,
    ) -> "WeakSupervisionExtractor":
        if not objectives:
            raise ValueError("cannot fit on an empty objective set")
        word_sequences, label_sequences = self.prepare_weak_labels(objectives)

        if self.tokenizer is None:
            corpus = (word for words in word_sequences for word in words)
            self.tokenizer = BpeTokenizer.train(
                corpus, num_merges=self.config.num_merges
            )

        piece_sequences: list[list[int]] = []
        target_sequences: list[list[int]] = []
        for words, labels in zip(word_sequences, label_sequences):
            encoding = self.tokenizer.encode(words)
            piece_sequences.append(list(encoding.ids))
            target_sequences.append(
                word_labels_to_piece_targets(
                    labels,
                    encoding.word_ids,
                    self.scheme,
                    self.config.subword_strategy,
                )
            )

        rng = np.random.default_rng(self.config.seed)
        spec = get_model_spec(self.config.model)
        encoder_config = spec.encoder_config(
            len(self.tokenizer.vocab), self.config.max_len
        )
        if self._pretrained_encoder is not None:
            if self._pretrained_encoder.config.vocab_size != len(
                self.tokenizer.vocab
            ):
                raise ValueError(
                    "pretrained encoder vocabulary does not match tokenizer"
                )
            encoder = self._pretrained_encoder
            encoder_config = encoder.config
        else:
            encoder = TransformerEncoder(encoder_config, rng)
        self.model = TokenClassifier(
            encoder_config, len(self.scheme), rng, encoder=encoder
        )
        class_weights = np.ones(len(self.scheme))
        class_weights[self.scheme.id_of("O")] = self.config.outside_weight
        self.loss_history = fit_token_classifier(
            self.model,
            piece_sequences,
            target_sequences,
            self.config.finetune,
            class_weights=class_weights,
            checkpoint=checkpoint,
        )
        return self

    # -- production phase -----------------------------------------------------

    def extract(self, text: str) -> dict[str, str]:
        return self.extract_batch([text])[0]

    @property
    def result_cache(self) -> ResultCache | None:
        """The active result cache (``None`` while capacity is 0)."""
        return self._resolve_result_cache()

    def _resolve_result_cache(self) -> ResultCache | None:
        """Build/rebuild the result cache to match the current config.

        Lazy because the CLI (and tests) swap ``self.config`` after
        construction; a capacity/seed change drops the old cache — stale
        entries under a different eviction stream would make statistics
        irreproducible.
        """
        capacity = self.config.result_cache_capacity
        if capacity <= 0:
            self._result_cache = None
            self._result_cache_key = None
            return None
        wanted = (capacity, self.config.result_cache_seed)
        if self._result_cache is None or self._result_cache_key != wanted:
            self._result_cache = ResultCache(
                capacity=capacity, seed=self.config.result_cache_seed
            )
            self._result_cache_key = wanted
        return self._result_cache

    def _apply_config_quantization(self) -> None:
        """Make the model's numeric path match ``config.quantize``.

        Re-applied per extract call because quantized tensors are derived
        state: the parallel runtime's broadcast rebuilds models from fp32
        weights, so shard copies re-attach here (ungated — the gate ran
        on the owner against the same weight bytes).
        """
        from repro.nn.quant import quantization_state

        state = quantization_state(self.model)
        if self.config.quantize is not None and state is None:
            self.model.enable_quantization(self.config.quantize)
        elif self.config.quantize is None and state is not None:
            self.model.disable_quantization()

    def enable_quantization(
        self,
        mode: str = "int8",
        calibration_texts: Sequence[str] | None = None,
        max_score_delta: float = 0.5,
    ):
        """Gated opt-in to the int8 encoder path.

        Runs the fp32 baseline on ``calibration_texts``, attaches the
        quantized tensors, re-runs, and compares with
        :func:`repro.nn.quant.equivalence_report`: every prediction must
        keep its top label at every position and the largest logit delta
        must stay within ``max_score_delta``. On failure the model is
        restored to fp32 and :class:`QuantizationError` is raised — the
        path never silently degrades extractions. Returns the (passing)
        report; on success ``config.quantize`` is flipped so saves,
        parallel broadcasts, and later calls keep the path.
        """
        if self.model is None or self.tokenizer is None:
            raise RuntimeError("extractor is not fitted; call fit() first")
        if calibration_texts is None or not list(calibration_texts):
            raise ValueError("calibration_texts must be non-empty")
        sequences = []
        for text in calibration_texts:
            tokens = self.word_tokenizer.tokenize(self._normalize(text))
            if not tokens:
                continue
            encoding = self.tokenizer.encode(
                [token.text for token in tokens]
            )
            sequences.append(list(encoding.ids))
        if not sequences:
            raise ValueError(
                "calibration_texts produced no token sequences"
            )
        from repro.nn.quant import equivalence_report

        self.model.disable_quantization()
        baseline = self.model.predict_logits(sequences)
        self.model.enable_quantization(mode)
        candidate = self.model.predict_logits(sequences)
        report = equivalence_report(baseline, candidate, max_score_delta)
        if not report.passed:
            self.model.disable_quantization()
            self.config = dataclasses.replace(self.config, quantize=None)
            raise QuantizationError(
                f"int8 equivalence gate failed: "
                f"{report.top_label_matches}/{report.total} top labels "
                f"match, max |delta| {report.max_abs_delta:.6g} "
                f"(bound {report.bound:.6g})",
                stage="quantize",
            )
        self.config = dataclasses.replace(self.config, quantize=mode)
        return report

    def disable_quantization(self) -> None:
        """Return to the bitwise-fp32 inference path."""
        self.config = dataclasses.replace(self.config, quantize=None)
        if self.model is not None:
            self.model.disable_quantization()

    def _predict_kwargs(self, counters: PerfCounters) -> dict:
        bucketed = self.config.batching == "bucketed"
        return {
            "token_budget": self.config.token_budget if bucketed else None,
            "sort_by_length": bucketed,
            "counters": counters,
            "cache": self._resolve_result_cache(),
        }

    def extract_batch(self, texts: Sequence[str]) -> list[dict[str, str]]:
        if self.model is None or self.tokenizer is None:
            raise RuntimeError("extractor is not fitted; call fit() first")
        self._apply_config_quantization()
        counters = PerfCounters()
        cache_before = self.tokenizer.cache_info()
        with counters.timer("wall_seconds"):
            with counters.timer("normalize_seconds"):
                normalized = [self._normalize_cached(text) for text in texts]
            with counters.timer("tokenize_seconds"):
                if self.fault_injector is not None:
                    self.fault_injector.check("tokenize")
                token_lists = [
                    self.word_tokenizer.tokenize(text) for text in normalized
                ]
                encodings = [
                    self.tokenizer.encode([token.text for token in tokens])
                    if tokens
                    else None
                    for tokens in token_lists
                ]
            sequences = [
                list(encoding.ids) for encoding in encodings if encoding
            ]
            with counters.timer("model_seconds"):
                if self.fault_injector is not None:
                    self.fault_injector.check("forward")
                if self.config.constrained_decoding:
                    prediction_list = [
                        constrained_decode(logits, self.scheme)
                        for logits in self.model.predict_logits(
                            sequences, **self._predict_kwargs(counters)
                        )
                    ]
                else:
                    prediction_list = self.model.predict(
                        sequences, **self._predict_kwargs(counters)
                    )
            with counters.timer("decode_seconds"):
                predictions = iter(prediction_list)
                results: list[dict[str, str]] = []
                for text, tokens, encoding in zip(
                    normalized, token_lists, encodings
                ):
                    if encoding is None:
                        results.append(
                            {field: "" for field in self.config.fields}
                        )
                        continue
                    piece_labels = next(predictions)
                    word_labels = pieces_to_word_labels(
                        piece_labels,
                        encoding.word_ids[: len(piece_labels)],
                        self.scheme,
                        num_words=len(tokens),
                    )
                    results.append(
                        decode_details(
                            text,
                            tokens,
                            word_labels,
                            self.config.fields,
                            span_policy=self.config.span_policy,
                        )
                    )
        cache_after = self.tokenizer.cache_info()
        with self._normalize_lock:
            normalize_hits = float(self._normalize_hits)
            normalize_misses = float(self._normalize_misses)
        stats = RunStats.from_counters(
            counters,
            wall_seconds=counters.get("wall_seconds"),
            bpe_cache_hits=cache_after["hits"] - cache_before["hits"],
            bpe_cache_misses=cache_after["misses"] - cache_before["misses"],
            extra={
                "normalize_cache_hits": normalize_hits,
                "normalize_cache_misses": normalize_misses,
            },
        )
        with self._stats_lock:
            self.last_run_stats = stats
            self.total_run_stats = self.total_run_stats.merge(stats)
        return results

    # -- persistence ---------------------------------------------------------

    def save(self, directory: str | Path) -> None:
        """Persist config, tokenizer, and model weights to a directory.

        Atomic end-to-end: everything (including a checksum manifest) is
        written to a sibling temp directory, fsynced, and renamed into
        place, so a crash mid-save never leaves a half-written model
        directory behind. Fault-injection sites: ``save`` on entry,
        ``save_commit`` between the full write and the publish rename.
        """
        if self.model is None or self.tokenizer is None:
            raise RuntimeError("cannot save an unfitted extractor")
        if self.fault_injector is not None:
            self.fault_injector.check("save")
        directory = Path(directory)
        directory.parent.mkdir(parents=True, exist_ok=True)
        tmp = directory.with_name(directory.name + ".tmp")
        if tmp.exists():
            shutil.rmtree(tmp)
        tmp.mkdir(parents=True)
        payload = dataclasses.asdict(self.config)
        payload["finetune"] = dataclasses.asdict(self.config.finetune)
        (tmp / "config.json").write_text(
            json.dumps(payload), encoding="utf-8"
        )
        self.tokenizer.save(tmp / "tokenizer.json")
        save_state(self.model, tmp / "model.npz")
        write_manifest(
            tmp,
            ["config.json", "tokenizer.json", "model.npz"],
            kind="weak_supervision_extractor",
        )
        if self.fault_injector is not None:
            self.fault_injector.check("save_commit")
        replace_dir(tmp, directory)

    @classmethod
    def load(cls, directory: str | Path) -> "WeakSupervisionExtractor":
        """Restore an extractor saved with :meth:`save`.

        Verifies integrity before trusting bytes: when the directory has a
        manifest every artifact is checksummed against it, and any missing,
        truncated, corrupt, or mismatched artifact raises a typed
        :class:`~repro.runtime.errors.ArtifactError` (directories from
        pre-manifest saves still load, with per-file checks only).
        """
        directory = Path(directory)
        manifest = verify_manifest(
            directory, kind="weak_supervision_extractor", required=False
        )
        artifacts = (manifest or {}).get("artifacts", {})
        payload = read_json(directory / "config.json")
        try:
            finetune = FineTuneConfig(**payload.pop("finetune"))
            payload["fields"] = tuple(payload["fields"])
            config = ExtractorConfig(finetune=finetune, **payload)
        except (AttributeError, KeyError, TypeError, ValueError) as error:
            raise ArtifactError(
                f"extractor config is malformed: {error}",
                path=str(directory / "config.json"),
            ) from error
        tokenizer = BpeTokenizer.load(directory / "tokenizer.json")
        extractor = cls(config, tokenizer=tokenizer)
        extractor.model = extractor.build_model()
        load_state(
            extractor.model,
            directory / "model.npz",
            expected_sha256=artifacts.get("model.npz", {}).get("sha256"),
        )
        return extractor
