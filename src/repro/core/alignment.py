"""Word-level IOB labels <-> BPE subword pieces.

The transformer consumes BPE pieces while Algorithm 1 labels whole words;
these helpers bridge the two granularities.

Two training-time strategies (ablated in the benchmarks):

* ``"first"`` — the first piece of a word carries the word's label id and
  the remaining pieces are excluded from the loss (``IGNORE_INDEX``). This
  is the standard HuggingFace token-classification recipe.
* ``"all"`` — every piece of the word is supervised: the first piece keeps
  ``B-f``, later pieces of a ``B-f`` word get ``I-f``, and all pieces of an
  ``I-f``/``O`` word repeat the word label.

At prediction time the label of a word is read from its first piece.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.iob import OUTSIDE, LabelScheme
from repro.nn.loss import IGNORE_INDEX

STRATEGIES = ("first", "all")


def _first_piece_flags(word_ids: Sequence[int]) -> list[bool]:
    flags: list[bool] = []
    previous = None
    for word_id in word_ids:
        flags.append(word_id != previous)
        previous = word_id
    return flags


def word_labels_to_piece_targets(
    word_labels: Sequence[str],
    word_ids: Sequence[int],
    scheme: LabelScheme,
    strategy: str = "first",
) -> list[int]:
    """Project word-level IOB labels onto subword pieces as training ids."""
    if strategy not in STRATEGIES:
        raise ValueError(f"unknown strategy {strategy!r}; use {STRATEGIES}")
    first_flags = _first_piece_flags(word_ids)
    targets: list[int] = []
    for is_first, word_id in zip(first_flags, word_ids):
        if word_id >= len(word_labels):
            raise IndexError(
                f"piece refers to word {word_id} but only "
                f"{len(word_labels)} word labels given"
            )
        label = word_labels[word_id]
        if is_first:
            targets.append(scheme.id_of(label))
        elif strategy == "first":
            targets.append(IGNORE_INDEX)
        else:  # "all": continuation pieces become I-f (or repeat O / I-f)
            if label.startswith("B-"):
                targets.append(scheme.id_of("I-" + label[2:]))
            else:
                targets.append(scheme.id_of(label))
    return targets


def pieces_to_word_labels(
    piece_label_ids: Sequence[int],
    word_ids: Sequence[int],
    scheme: LabelScheme,
    num_words: int,
) -> list[str]:
    """Fold per-piece predictions back to one IOB label per word.

    The word label is taken from its first piece; words whose pieces were
    all truncated away (sequence longer than the model's max length)
    default to ``O``.
    """
    labels = [OUTSIDE] * num_words
    seen: set[int] = set()
    for label_id, word_id in zip(piece_label_ids, word_ids):
        if word_id in seen or word_id >= num_words:
            continue
        seen.add(word_id)
        labels[word_id] = scheme.label_of(int(label_id))
    return labels
