"""Token-sequence matchers used by Algorithm 1 (line 5).

The paper's implementation "relies on exact token-level matching between
annotations and sustainability objectives" and names fuzzy matching as a
future improvement (Section 5.3). Both are provided here behind a common
interface; the ablation bench compares them.
"""

from __future__ import annotations

from collections.abc import Sequence


def _edit_distance_at_most_one(a: str, b: str) -> bool:
    """True if the Levenshtein distance between ``a`` and ``b`` is <= 1."""
    if a == b:
        return True
    if abs(len(a) - len(b)) > 1:
        return False
    if len(a) > len(b):
        a, b = b, a
    # len(b) - len(a) in {0, 1}
    i = j = 0
    edited = False
    while i < len(a) and j < len(b):
        if a[i] == b[j]:
            i += 1
            j += 1
            continue
        if edited:
            return False
        edited = True
        if len(a) == len(b):
            i += 1
            j += 1
        else:
            j += 1  # deletion from b
    return True


class TokenMatcher:
    """Interface: locate a token subsequence inside a token sequence."""

    def token_match(self, candidate: str, target: str) -> bool:
        raise NotImplementedError

    def find(
        self,
        haystack: Sequence[str],
        needle: Sequence[str],
        forbidden: Sequence[bool] | None = None,
    ) -> int:
        """Return the first start index of ``needle`` in ``haystack``.

        Positions where ``forbidden`` is True cannot participate in a match
        (Algorithm 1 never relabels a token). Returns -1 when not found —
        the sentinel used by line 6 of Algorithm 1.
        """
        if not needle or len(needle) > len(haystack):
            return -1
        for start in range(len(haystack) - len(needle) + 1):
            window = range(start, start + len(needle))
            if forbidden is not None and any(
                forbidden[pos] for pos in window
            ):
                continue
            if all(
                self.token_match(haystack[start + k], needle[k])
                for k in range(len(needle))
            ):
                return start
        return -1

    def find_all(
        self, haystack: Sequence[str], needle: Sequence[str]
    ) -> list[int]:
        """All (possibly overlapping) match start positions."""
        matches: list[int] = []
        if not needle or len(needle) > len(haystack):
            return matches
        for start in range(len(haystack) - len(needle) + 1):
            if all(
                self.token_match(haystack[start + k], needle[k])
                for k in range(len(needle))
            ):
                matches.append(start)
        return matches


class ExactMatcher(TokenMatcher):
    """Exact token equality — the paper's implementation."""

    def token_match(self, candidate: str, target: str) -> bool:
        return candidate == target


class LowercaseMatcher(TokenMatcher):
    """Case-insensitive token equality."""

    def token_match(self, candidate: str, target: str) -> bool:
        return candidate.casefold() == target.casefold()


class FuzzyMatcher(TokenMatcher):
    """Forgiving matcher — the paper's proposed future extension.

    A candidate token matches a target token when, after casefolding:
    they are equal; one is the other plus a trivial inflection suffix
    (``s``, ``es``, ``d``, ``ed``, ``ing``); or, for tokens of at least
    ``min_edit_length`` characters, their edit distance is at most one
    (typo tolerance — sustainability reports are PDF extractions).
    """

    _SUFFIXES = ("ing", "ed", "es", "s", "d")

    def __init__(self, min_edit_length: int = 5) -> None:
        self.min_edit_length = min_edit_length

    def _strip_suffix(self, token: str) -> str:
        for suffix in self._SUFFIXES:
            if token.endswith(suffix) and len(token) - len(suffix) >= 3:
                return token[: -len(suffix)]
        return token

    @classmethod
    def _stems_match(cls, a: str, b: str) -> bool:
        # "reducing" -> "reduc" matches "reduce" -> "reduce" via e-drop.
        return a == b or a + "e" == b or a == b + "e"

    def token_match(self, candidate: str, target: str) -> bool:
        lowered_candidate = candidate.casefold()
        lowered_target = target.casefold()
        if lowered_candidate == lowered_target:
            return True
        if self._stems_match(
            self._strip_suffix(lowered_candidate),
            self._strip_suffix(lowered_target),
        ):
            return True
        if (
            min(len(lowered_candidate), len(lowered_target))
            >= self.min_edit_length
        ):
            return _edit_distance_at_most_one(
                lowered_candidate, lowered_target
            )
        return False
