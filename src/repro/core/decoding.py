"""Decode word-level IOB labels into extracted field values.

Spans are mapped back onto the source text via token character offsets, so
extracted values are verbatim substrings of the objective (including any
punctuation between the span's tokens).
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.iob import Span, iob_to_spans
from repro.text.words import Token


def span_text(text: str, tokens: Sequence[Token], span: Span) -> str:
    """The source substring covered by a token span."""
    if span.end > len(tokens):
        raise ValueError(f"span {span} exceeds token count {len(tokens)}")
    return text[tokens[span.start].start : tokens[span.end - 1].end]


SPAN_POLICIES = ("leftmost", "longest")


def decode_details(
    text: str,
    tokens: Sequence[Token],
    labels: Sequence[str],
    fields: Sequence[str],
    span_policy: str = "leftmost",
) -> dict[str, str]:
    """Turn an IOB labeling into a field -> value dictionary.

    Every field in ``fields`` is present in the result; fields with no
    predicted span map to ``""``. Each objective carries at most one value
    per key detail in the paper's schema, so when the model predicts
    several spans for one field a ``span_policy`` picks the winner:
    ``"leftmost"`` (details are usually stated in the first clause) or
    ``"longest"`` (robust to span fragmentation).
    """
    if span_policy not in SPAN_POLICIES:
        raise ValueError(
            f"unknown span policy {span_policy!r}; use {SPAN_POLICIES}"
        )
    if len(tokens) != len(labels):
        raise ValueError(
            f"{len(tokens)} tokens vs {len(labels)} labels"
        )
    best: dict[str, Span] = {}
    for span in iob_to_spans(labels, repair=True):
        if span.field not in fields:
            continue  # prediction for a field outside the schema
        current = best.get(span.field)
        if current is None:
            best[span.field] = span
        elif span_policy == "longest" and len(span) > len(current):
            best[span.field] = span
    details = {field: "" for field in fields}
    for field, span in best.items():
        details[field] = span_text(text, tokens, span)
    return details
