"""IOB label scheme utilities (CoNLL-2003 style, paper Section 3.2).

Labels are strings: ``"O"``, ``"B-<field>"``, ``"I-<field>"``. A
:class:`LabelScheme` fixes the field inventory and provides the
string <-> id mapping the neural model trains against.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Sequence

OUTSIDE = "O"


@dataclasses.dataclass(frozen=True)
class Span:
    """A labeled token span: ``tokens[start:end]`` carries ``field``."""

    field: str
    start: int
    end: int

    def __post_init__(self) -> None:
        if self.start < 0 or self.end <= self.start:
            raise ValueError(f"invalid span [{self.start}, {self.end})")

    def __len__(self) -> int:
        return self.end - self.start


class LabelScheme:
    """Field inventory and the derived IOB label <-> id mapping.

    Label ids are stable: ``O`` is 0, then ``B-f``/``I-f`` pairs in field
    order. Example for fields ``("Action",)``: ``O=0, B-Action=1,
    I-Action=2``.
    """

    def __init__(self, fields: Sequence[str]) -> None:
        if not fields:
            raise ValueError("a label scheme needs at least one field")
        if len(set(fields)) != len(fields):
            raise ValueError("duplicate fields in label scheme")
        self.fields = tuple(fields)
        self.labels: tuple[str, ...] = (OUTSIDE,) + tuple(
            prefix + field
            for field in self.fields
            for prefix in ("B-", "I-")
        )
        self._label_to_id = {label: i for i, label in enumerate(self.labels)}

    def __len__(self) -> int:
        return len(self.labels)

    def id_of(self, label: str) -> int:
        try:
            return self._label_to_id[label]
        except KeyError:
            raise KeyError(
                f"unknown label {label!r}; scheme has {self.labels}"
            ) from None

    def label_of(self, label_id: int) -> str:
        if not 0 <= label_id < len(self.labels):
            raise IndexError(f"label id {label_id} out of range")
        return self.labels[label_id]

    def encode(self, labels: Sequence[str]) -> list[int]:
        return [self.id_of(label) for label in labels]

    def decode(self, ids: Sequence[int]) -> list[str]:
        return [self.label_of(i) for i in ids]


def spans_to_iob(spans: Sequence[Span], length: int) -> list[str]:
    """Render non-overlapping spans as an IOB label sequence.

    Raises ``ValueError`` on overlapping spans or spans out of range.
    """
    labels = [OUTSIDE] * length
    for span in spans:
        if span.end > length:
            raise ValueError(f"span {span} exceeds sequence length {length}")
        for position in range(span.start, span.end):
            if labels[position] != OUTSIDE:
                raise ValueError(f"span {span} overlaps an earlier span")
        labels[span.start] = f"B-{span.field}"
        for position in range(span.start + 1, span.end):
            labels[position] = f"I-{span.field}"
    return labels


def iob_to_spans(labels: Sequence[str], repair: bool = True) -> list[Span]:
    """Decode an IOB sequence into spans.

    With ``repair=True`` (production decoding of model output) an ``I-f``
    without a preceding ``B-f``/``I-f`` of the same field is treated as the
    beginning of a new span — the standard greedy IOB repair. With
    ``repair=False`` such sequences raise ``ValueError`` (used to validate
    weak-label output, which must be well-formed by construction).
    """
    spans: list[Span] = []
    current_field: str | None = None
    start = 0
    for index, label in enumerate(labels):
        if label == OUTSIDE:
            if current_field is not None:
                spans.append(Span(current_field, start, index))
                current_field = None
            continue
        if "-" not in label:
            raise ValueError(f"malformed IOB label {label!r} at {index}")
        prefix, field = label.split("-", 1)
        if prefix == "B":
            if current_field is not None:
                spans.append(Span(current_field, start, index))
            current_field = field
            start = index
        elif prefix == "I":
            if current_field == field:
                continue  # span continues
            if not repair:
                raise ValueError(
                    f"dangling {label!r} at position {index} (no open span)"
                )
            if current_field is not None:
                spans.append(Span(current_field, start, index))
            current_field = field
            start = index
        else:
            raise ValueError(f"malformed IOB label {label!r} at {index}")
    if current_field is not None:
        spans.append(Span(current_field, start, len(labels)))
    return spans
