"""CoNLL-2003-style import/export of weak token labels.

The paper grounds its label format in CoNLL-2003 (§3.2, Table 2: one token
and one IOB label per line, blank line between sentences). Exporting
Algorithm 1's output in this format makes the weakly labeled data usable
by any external sequence-labeling toolkit, and importing lets externally
annotated data flow into this pipeline.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from pathlib import Path

from repro.core.schema import AnnotatedObjective
from repro.core.weak_labeling import weakly_label_objective


def format_conll(
    sentences: Iterable[tuple[Sequence[str], Sequence[str]]],
) -> str:
    """Render (tokens, labels) pairs as CoNLL text."""
    blocks: list[str] = []
    for tokens, labels in sentences:
        if len(tokens) != len(labels):
            raise ValueError(
                f"{len(tokens)} tokens vs {len(labels)} labels"
            )
        blocks.append(
            "\n".join(
                f"{token}\t{label}" for token, label in zip(tokens, labels)
            )
        )
    return "\n\n".join(blocks) + ("\n" if blocks else "")


def parse_conll(text: str) -> list[tuple[list[str], list[str]]]:
    """Parse CoNLL text back into (tokens, labels) pairs."""
    sentences: list[tuple[list[str], list[str]]] = []
    tokens: list[str] = []
    labels: list[str] = []
    for line in text.splitlines():
        line = line.rstrip()
        if not line:
            if tokens:
                sentences.append((tokens, labels))
                tokens, labels = [], []
            continue
        parts = line.split("\t") if "\t" in line else line.split()
        if len(parts) < 2:
            raise ValueError(f"malformed CoNLL line: {line!r}")
        tokens.append(parts[0])
        labels.append(parts[-1])
    if tokens:
        sentences.append((tokens, labels))
    return sentences


def export_weak_labels(
    objectives: Iterable[AnnotatedObjective],
    path: str | Path,
) -> int:
    """Run Algorithm 1 on each objective and write CoNLL to ``path``.

    Returns the number of sentences written.
    """
    sentences: list[tuple[list[str], list[str]]] = []
    for objective in objectives:
        tokens, labels = weakly_label_objective(objective)
        sentences.append(([token.text for token in tokens], labels))
    Path(path).write_text(format_conll(sentences), encoding="utf-8")
    return len(sentences)


def import_conll(path: str | Path) -> list[tuple[list[str], list[str]]]:
    """Read a CoNLL file into (tokens, labels) pairs."""
    return parse_conll(Path(path).read_text(encoding="utf-8"))
