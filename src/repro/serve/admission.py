"""Admission control: bounded priority queues with load shedding.

The engine's front door. Each priority class (``interactive`` ahead of
``bulk``) gets its own bounded FIFO; when a class is at its depth bound the
submit call is *rejected immediately* with a typed
:class:`~repro.runtime.errors.OverloadedError` instead of blocking the
caller — under overload an online system must shed, not queue without
bound. Workers lease entries out of the queues (``pop`` + ``gather``); the
controller tracks leases so :meth:`wait_idle` can tell "drained" apart
from "queue momentarily empty but work still in flight".
"""

from __future__ import annotations

import threading
import time
from collections import deque
from collections.abc import Mapping

from repro.runtime.errors import OverloadedError
from repro.serve.metrics import SloMetrics

#: Priority classes, highest first: dispatch always prefers interactive.
PRIORITIES = ("interactive", "bulk")


class AdmissionController:
    """Bounded two-class priority queue with lease accounting.

    Args:
        queue_depth: per-class depth bound, or a mapping
            ``{priority: depth}`` to bound the classes differently.
        metrics: engine metrics registry; rejection/admission counters
            land here (``admitted``, ``rejected``, ``rejected.<class>``).
        clock: injectable monotonic clock for deterministic tests.
    """

    def __init__(
        self,
        queue_depth: int | Mapping[str, int] = 64,
        metrics: SloMetrics | None = None,
        clock=time.monotonic,
    ) -> None:
        if isinstance(queue_depth, Mapping):
            depths = {
                priority: int(queue_depth.get(priority, 64))
                for priority in PRIORITIES
            }
        else:
            depths = {priority: int(queue_depth) for priority in PRIORITIES}
        for priority, depth in depths.items():
            if depth <= 0:
                raise ValueError(
                    f"queue depth for {priority!r} must be positive"
                )
        self.depths = depths
        self.metrics = metrics
        self._clock = clock
        self._queues: dict[str, deque] = {
            priority: deque() for priority in PRIORITIES
        }
        self._cond = threading.Condition()
        self._leased = 0
        self._shedding = False  # draining: reject new, serve queued
        self._closed = False  # stopped: reject new, wake all poppers

    # -- state ---------------------------------------------------------------

    def __len__(self) -> int:
        with self._cond:
            return sum(len(queue) for queue in self._queues.values())

    def depth(self, priority: str) -> int:
        with self._cond:
            return len(self._queues[priority])

    def pending(self) -> int:
        """Queued plus leased (in-flight) entries."""
        with self._cond:
            return (
                sum(len(queue) for queue in self._queues.values())
                + self._leased
            )

    def shed(self) -> None:
        """Enter drain mode: reject new admissions, keep serving queued."""
        with self._cond:
            self._shedding = True
            self._cond.notify_all()

    def close(self) -> None:
        """Stop the queue: reject admissions and wake every blocked pop."""
        with self._cond:
            self._shedding = True
            self._closed = True
            self._cond.notify_all()

    @property
    def closed(self) -> bool:
        with self._cond:
            return self._closed

    # -- producer side -------------------------------------------------------

    def admit(self, entry) -> None:
        """Enqueue ``entry`` or raise :class:`OverloadedError` (no blocking).

        ``entry`` must expose ``priority`` (a :data:`PRIORITIES` member).
        """
        priority = entry.priority
        with self._cond:
            if self._shedding:
                self._count("rejected", priority)
                raise OverloadedError(
                    "engine is draining and not accepting requests",
                    stage="admission",
                )
            queue = self._queues[priority]
            if len(queue) >= self.depths[priority]:
                self._count("rejected", priority)
                raise OverloadedError(
                    f"{priority} queue is at its depth bound "
                    f"({self.depths[priority]}); request shed",
                    stage="admission",
                )
            queue.append(entry)
            if self.metrics is not None:
                self.metrics.count("admitted")
            self._cond.notify()

    def _count(self, name: str, priority: str) -> None:
        if self.metrics is not None:
            self.metrics.count(name)
            self.metrics.count(f"{name}.{priority}")

    # -- consumer side (workers) ---------------------------------------------

    def pop(self, timeout: float | None = None):
        """Lease the oldest entry of the highest non-empty priority.

        Blocks up to ``timeout`` seconds; returns ``None`` on timeout or
        when the controller is closed and empty. A returned entry is
        *leased*: call :meth:`release` once its work finished.
        """
        deadline = None if timeout is None else self._clock() + timeout
        with self._cond:
            while True:
                for priority in PRIORITIES:
                    queue = self._queues[priority]
                    if queue:
                        self._leased += 1
                        return queue.popleft()
                if self._closed:
                    return None
                if deadline is None:
                    self._cond.wait()
                    continue
                remaining = deadline - self._clock()
                if remaining <= 0:
                    return None
                self._cond.wait(remaining)

    def gather(
        self,
        first,
        *,
        max_requests: int,
        max_tokens: int,
        max_wait_seconds: float,
    ) -> list:
        """Coalesce a micro-batch around an already-leased ``first`` entry.

        Greedily leases queued entries of the same ``kind`` (interactive
        before bulk, FIFO within a class) until the batch reaches
        ``max_requests`` rows or ``max_tokens`` estimated tokens, waiting
        up to ``max_wait_seconds`` for more arrivals — flush on whichever
        bound trips first. Two cases never wait: while shedding (drain —
        latency beats batching once the engine is closing down), and when
        the system is otherwise idle (nothing queued, no other request in
        flight that could produce a follow-up), so a lone low-load request
        pays zero batching tax.
        """
        batch = [first]
        tokens = first.cost
        if max_requests <= 1:
            return batch
        deadline = self._clock() + max_wait_seconds
        with self._cond:
            while len(batch) < max_requests and tokens < max_tokens:
                entry = self._pop_compatible_locked(
                    first.request.kind, max_tokens - tokens
                )
                if entry is not None:
                    self._leased += 1
                    batch.append(entry)
                    tokens += entry.cost
                    continue
                others = (
                    sum(len(queue) for queue in self._queues.values())
                    + self._leased
                    - len(batch)
                )
                remaining = deadline - self._clock()
                if (
                    remaining <= 0
                    or others <= 0
                    or self._closed
                    or self._shedding
                ):
                    break
                self._cond.wait(min(remaining, 0.01))
        return batch

    def _pop_compatible_locked(self, kind: str, token_headroom: int):
        """The oldest same-kind entry that fits the remaining token budget.

        Only the *head* of each class is considered — skipping over a
        too-large head to batch a smaller later request would reorder the
        FIFO and starve big requests.
        """
        for priority in PRIORITIES:
            queue = self._queues[priority]
            if not queue:
                continue
            head = queue[0]
            if head.request.kind != kind:
                continue
            if head.cost > token_headroom:
                continue
            return queue.popleft()
        return None

    def release(self, leases: int = 1) -> None:
        """Return ``leases`` finished leases (wakes :meth:`wait_idle`)."""
        with self._cond:
            self._leased -= leases
            if self._leased < 0:
                raise RuntimeError("released more leases than taken")
            self._cond.notify_all()

    def pop_all(self) -> list:
        """Unconditionally empty every queue (abort path); no leases taken."""
        with self._cond:
            entries: list = []
            for priority in PRIORITIES:
                entries.extend(self._queues[priority])
                self._queues[priority].clear()
            self._cond.notify_all()
            return entries

    def wait_idle(self, timeout: float | None = None) -> bool:
        """Block until queues are empty and all leases returned."""
        deadline = None if timeout is None else self._clock() + timeout
        with self._cond:
            while (
                sum(len(queue) for queue in self._queues.values()) > 0
                or self._leased > 0
            ):
                if deadline is None:
                    self._cond.wait()
                    continue
                remaining = deadline - self._clock()
                if remaining <= 0:
                    return False
                self._cond.wait(remaining)
            return True
