"""Routing policies and per-replica health for the serving fleet.

The :class:`~repro.serve.fleet.FleetRouter` separates *where a request
goes* (a :class:`RoutingPolicy`) from *who is allowed to receive it*
(a :class:`ReplicaHealth` per replica):

* policies pick among the currently-admissible replicas —
  :class:`RoundRobinPolicy` (cheap, fair under uniform cost),
  :class:`LeastLoadedPolicy` (min queued + in-flight requests), and
  :class:`TokenCostAwarePolicy` (min outstanding *estimated tokens*, the
  right load signal when request sizes are skewed). All three are
  deterministic given the same replica states, with replica id as the
  tie-break, so routing decisions are reproducible in tests;
* health is a replica-level circuit breaker: ``failure_threshold``
  consecutive replica-attributable failures eject a replica from the
  candidate set, a cooldown later it is re-admitted *on probation* (one
  class of trial traffic), a probation success restores it and a
  probation failure re-ejects it. A crashed replica is ``dead`` —
  permanently out, never re-admitted.

Register a new policy by adding it to :data:`ROUTING_POLICIES`.
"""

from __future__ import annotations

import threading
import time
from collections.abc import Callable

from repro.runtime.resilience import CircuitBreaker

#: Health states a replica can report (``dead`` is terminal).
HEALTHY, PROBATION, EJECTED, DEAD = (
    "healthy",
    "probation",
    "ejected",
    "dead",
)


class ReplicaHealth:
    """Consecutive-failure ejection with probationary re-admission.

    A thin replica-level veneer over the per-stage
    :class:`~repro.runtime.resilience.CircuitBreaker` (closed → healthy,
    open → ejected, half-open → probation), plus a terminal ``dead``
    state for crashed replicas. Thread-safe: router dispatch threads and
    engine-callback threads record outcomes concurrently.
    """

    def __init__(
        self,
        failure_threshold: int = 3,
        readmission_seconds: float = 0.25,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self._breaker = CircuitBreaker(
            failure_threshold=failure_threshold,
            recovery_time=readmission_seconds,
            clock=clock,
        )
        self._dead = threading.Event()

    @property
    def state(self) -> str:
        if self._dead.is_set():
            return DEAD
        return {
            "closed": HEALTHY,
            "open": EJECTED,
            "half_open": PROBATION,
        }[self._breaker.state]

    @property
    def dead(self) -> bool:
        return self._dead.is_set()

    def admissible(self) -> bool:
        """Whether the router may dispatch to this replica right now.

        An ejected replica whose cooldown elapsed answers True exactly
        like the breaker's half-open trial — that admitted request *is*
        the probation.
        """
        if self._dead.is_set():
            return False
        return self._breaker.allow()

    def record_success(self) -> None:
        if not self._dead.is_set():
            self._breaker.record_success()

    def record_failure(self) -> None:
        """One replica-attributable failure (stall, crash error, ...)."""
        if not self._dead.is_set():
            self._breaker.record_failure()

    def mark_dead(self) -> None:
        self._dead.set()


class RoutingPolicy:
    """Base policy: pick one replica out of the admissible candidates.

    ``select`` receives a non-empty list of replica objects exposing
    ``replica_id`` (stable string), ``load()`` (queued + in-flight
    requests) and ``outstanding_tokens()`` (estimated tokens dispatched
    but not yet resolved), plus the token-cost estimate of the request
    being routed.
    """

    name = "base"

    def select(self, candidates: list, cost: int):
        raise NotImplementedError


class RoundRobinPolicy(RoutingPolicy):
    """Cycle over candidates in replica-id order; fair under uniform cost."""

    name = "round-robin"

    def __init__(self) -> None:
        self._turn = 0
        self._lock = threading.Lock()

    def select(self, candidates: list, cost: int):
        ordered = sorted(candidates, key=lambda r: r.replica_id)
        with self._lock:
            turn = self._turn
            self._turn += 1
        return ordered[turn % len(ordered)]


class LeastLoadedPolicy(RoutingPolicy):
    """Min queued + in-flight requests; replica id breaks ties."""

    name = "least-loaded"

    def select(self, candidates: list, cost: int):
        return min(candidates, key=lambda r: (r.load(), r.replica_id))


class TokenCostAwarePolicy(RoutingPolicy):
    """Min outstanding estimated tokens; the load signal under skew.

    Two queued ten-token requests are cheaper than one five-hundred-token
    request — request *count* (least-loaded) gets that backwards, token
    cost does not.
    """

    name = "token-cost"

    def select(self, candidates: list, cost: int):
        return min(
            candidates, key=lambda r: (r.outstanding_tokens(), r.replica_id)
        )


#: Policy registry keyed by CLI/config name.
ROUTING_POLICIES: dict[str, type[RoutingPolicy]] = {
    RoundRobinPolicy.name: RoundRobinPolicy,
    LeastLoadedPolicy.name: LeastLoadedPolicy,
    TokenCostAwarePolicy.name: TokenCostAwarePolicy,
}


def make_policy(name: str) -> RoutingPolicy:
    """Instantiate a registered policy; unknown names raise ValueError."""
    try:
        policy_cls = ROUTING_POLICIES[name]
    except KeyError:
        raise ValueError(
            f"unknown routing policy {name!r}; "
            f"use one of {sorted(ROUTING_POLICIES)}"
        ) from None
    return policy_cls()
