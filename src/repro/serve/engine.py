"""The online serving engine: submit -> Future over the batch runtime.

``ServingEngine`` turns the corpus-at-a-time pipeline into a request-level
service (pure stdlib: threads + condition variables, no network deps):

* :meth:`~ServingEngine.submit` validates a request, runs it through the
  :class:`~repro.serve.admission.AdmissionController` (bounded per-priority
  queues, typed :class:`~repro.runtime.errors.OverloadedError` shedding)
  and returns a :class:`concurrent.futures.Future`;
* worker threads lease requests and coalesce them into **dynamic
  micro-batches** (flush on ``max_batch_tokens`` or ``max_wait_ms``,
  whichever first) that run through the existing length-bucketed
  scheduler — the PR 1 width-invariance guarantee makes a request's
  results bitwise-identical no matter which micro-batch it rides in;
* every model call runs under :func:`repro.runtime.resilience.run_stage`
  (retries, per-stage circuit breakers, fault injection), and a batch that
  fails irrecoverably is re-run request-by-request so one poisoned request
  degrades (fallback extractor) or lands in the engine quarantine instead
  of failing its batch-mates;
* :meth:`~ServingEngine.metrics_snapshot` exposes the SLO view: per-stage
  latency histograms (p50/p95/p99), queue-wait vs. compute split,
  throughput, and rejection/degradation counts.

Requests may be submitted before :meth:`~ServingEngine.start` — they queue
up (within the admission bounds) and run once workers exist, which is also
what makes the overload tests deterministic.
"""

from __future__ import annotations

import dataclasses
import threading
import time
from collections import deque
from collections.abc import Mapping, Sequence
from concurrent.futures import Future

from repro.runtime.errors import (
    InputError,
    OverloadedError,
    ReproError,
    classify_error,
)
from repro.runtime.rescache import ResultCache, result_key
from repro.runtime.resilience import (
    CircuitBreaker,
    FaultInjector,
    RetryPolicy,
    run_stage,
)
from repro.serve.admission import PRIORITIES, AdmissionController
from repro.serve.metrics import SloMetrics

#: Request kinds the engine can serve.
KIND_DETECT = "detect"
KIND_EXTRACT = "extract"

#: ``ServeResult.status`` values (mirrors the pipeline degradation ladder).
STATUS_OK = "ok"
STATUS_DEGRADED = "degraded"

#: Engine lifecycle states.
NEW, RUNNING, DRAINING, STOPPED = "new", "running", "draining", "stopped"


@dataclasses.dataclass(frozen=True)
class ServeRequest:
    """One unit of online work: score or extract a handful of texts."""

    kind: str  # "detect" | "extract"
    texts: tuple[str, ...]
    priority: str = "interactive"

    def __post_init__(self) -> None:
        if self.kind not in (KIND_DETECT, KIND_EXTRACT):
            raise InputError(
                f"unknown request kind {self.kind!r}; "
                f"use {KIND_DETECT!r} or {KIND_EXTRACT!r}",
                stage="admission",
            )
        if self.priority not in PRIORITIES:
            raise InputError(
                f"unknown priority {self.priority!r}; use {PRIORITIES}",
                stage="admission",
            )
        if not self.texts:
            raise InputError("request has no texts", stage="admission")
        for text in self.texts:
            if not isinstance(text, str) or not text.strip():
                raise InputError(
                    "request texts must be non-empty strings",
                    stage="admission",
                )


@dataclasses.dataclass(frozen=True)
class ServeResult:
    """What a request's Future resolves to."""

    kind: str
    #: Detection: one ``float`` score per text. Extraction: one
    #: ``dict[str, str]`` detail record per text.
    values: tuple
    status: str  # ok | degraded
    queue_wait_seconds: float
    compute_seconds: float
    total_seconds: float
    batch_size: int  # rows in the micro-batch that served this request


class _QueuedRequest:
    """Internal queue entry: request + future + timing provenance."""

    __slots__ = ("request", "future", "cost", "admitted_at")

    def __init__(self, request: ServeRequest, cost: int, admitted_at: float):
        self.request = request
        self.future: Future = Future()
        self.cost = cost
        self.admitted_at = admitted_at

    @property
    def priority(self) -> str:
        return self.request.priority


@dataclasses.dataclass(frozen=True)
class ServingConfig:
    """Engine tuning knobs.

    Attributes:
        num_workers: threads executing micro-batches.
        max_batch_requests: row cap per micro-batch (1 = no coalescing,
            the batch-size-1 baseline the serving bench compares against).
        max_batch_tokens: estimated-token cap per micro-batch; the batcher
            flushes when the next compatible request would exceed it.
        max_wait_ms: how long a leased request waits for batch-mates
            before flushing — the latency the engine trades for batching.
        queue_depth: per-priority admission bound (int, or mapping
            ``{"interactive": n, "bulk": m}``).
        breaker_threshold / breaker_recovery_time: per-stage circuit
            breaker configuration.
        quarantine_limit: how many failed-request records to retain.
        result_cache_capacity: entries in the content-addressed result
            cache probed at submit time (0 — the default — disables it).
            Hits resolve immediately: they bypass admission, queueing,
            and the batch-token budget entirely (``batch_size=0`` marks
            them in the :class:`ServeResult`).
        result_cache_seed: seed of the cache's deterministic eviction.
    """

    num_workers: int = 2
    max_batch_requests: int = 8
    max_batch_tokens: int = 2048
    max_wait_ms: float = 2.0
    queue_depth: int | Mapping[str, int] = 64
    breaker_threshold: int = 8
    breaker_recovery_time: float = 0.0
    quarantine_limit: int = 256
    result_cache_capacity: int = 0
    result_cache_seed: int = 0

    def __post_init__(self) -> None:
        if self.num_workers <= 0:
            raise ValueError("num_workers must be positive")
        if self.max_batch_requests <= 0:
            raise ValueError("max_batch_requests must be positive")
        if self.max_batch_tokens <= 0:
            raise ValueError("max_batch_tokens must be positive")
        if self.max_wait_ms < 0:
            raise ValueError("max_wait_ms must be non-negative")
        if self.quarantine_limit <= 0:
            raise ValueError("quarantine_limit must be positive")
        if self.result_cache_capacity < 0:
            raise ValueError("result_cache_capacity must be >= 0")


def _estimate_tokens(texts: Sequence[str]) -> int:
    """Cheap token-cost estimate for admission/batching (words, min 1)."""
    return max(1, sum(len(text.split()) for text in texts))


class ServingEngine:
    """Request-level serving over a detector and/or extractor backend.

    Args:
        detector: anything with ``predict_proba(texts) -> array`` (serves
            ``kind="detect"``).
        extractor: anything with ``extract_batch(texts) -> list[dict]``
            (serves ``kind="extract"``).
        fallback_extractor: degradation-ladder step for poisoned extract
            requests (results come back with ``status="degraded"``).
        config: :class:`ServingConfig` tuning knobs.
        retry_policy: per-stage retry policy for
            :func:`~repro.runtime.resilience.run_stage`.
        fault_injector: deterministic chaos hooks; the engine checks in at
            the ``"detect"``/``"extract"``/``"fallback_extract"`` stages.
    """

    def __init__(
        self,
        detector=None,
        extractor=None,
        *,
        fallback_extractor=None,
        config: ServingConfig | None = None,
        retry_policy: RetryPolicy | None = None,
        fault_injector: FaultInjector | None = None,
        clock=time.monotonic,
    ) -> None:
        if detector is None and extractor is None:
            raise ValueError(
                "a ServingEngine needs a detector and/or an extractor"
            )
        self.detector = detector
        self.extractor = extractor
        self.fallback_extractor = fallback_extractor
        self.config = config or ServingConfig()
        self.retry_policy = retry_policy or RetryPolicy(
            max_retries=1, base_delay=0.0, jitter=0.0
        )
        self.fault_injector = fault_injector
        self._clock = clock
        self.metrics = SloMetrics(clock=clock)
        self.admission = AdmissionController(
            self.config.queue_depth, metrics=self.metrics, clock=clock
        )
        self._breakers = {
            stage: CircuitBreaker(
                failure_threshold=self.config.breaker_threshold,
                recovery_time=self.config.breaker_recovery_time,
            )
            for stage in (KIND_DETECT, KIND_EXTRACT, "fallback_extract")
        }
        #: Content-addressed request-result cache (None while disabled).
        self.result_cache: ResultCache | None = (
            ResultCache(
                capacity=self.config.result_cache_capacity,
                seed=self.config.result_cache_seed,
            )
            if self.config.result_cache_capacity > 0
            else None
        )
        #: Failed requests with full error provenance (bounded).
        self.quarantine: deque[dict] = deque(
            maxlen=self.config.quarantine_limit
        )
        self._workers: list[threading.Thread] = []
        self._state = NEW
        self._state_lock = threading.Lock()

    @classmethod
    def from_pipeline(cls, pipeline, **kwargs) -> "ServingEngine":
        """Build an engine over a :class:`~repro.goalspotter.GoalSpotter`."""
        kwargs.setdefault(
            "fallback_extractor", getattr(pipeline, "fallback_extractor", None)
        )
        kwargs.setdefault(
            "fault_injector", getattr(pipeline, "fault_injector", None)
        )
        return cls(
            detector=pipeline.detector,
            extractor=pipeline.extractor,
            **kwargs,
        )

    @classmethod
    def from_task_model(cls, model, **kwargs) -> "ServingEngine":
        """Build an engine over a fitted :class:`repro.tasks.models.TaskModel`.

        The task's kind picks the slot: classification backends serve as
        the detector (``kind="detect"`` requests return per-text
        probability rows), extraction backends as the extractor.
        """
        backend = getattr(model, "backend", model)
        if getattr(model, "serving_kind", "extract") == "detect":
            return cls(detector=backend, **kwargs)
        return cls(extractor=backend, **kwargs)

    # -- lifecycle -----------------------------------------------------------

    @property
    def state(self) -> str:
        with self._state_lock:
            return self._state

    def start(self) -> "ServingEngine":
        """Spawn the worker pool; idempotent while running."""
        with self._state_lock:
            if self._state == RUNNING:
                return self
            if self._state in (DRAINING, STOPPED):
                raise RuntimeError(
                    f"cannot start a {self._state} engine"
                )
            self._state = RUNNING
            for index in range(self.config.num_workers):
                worker = threading.Thread(
                    target=self._worker_loop,
                    name=f"repro-serve-worker-{index}",
                    daemon=True,
                )
                worker.start()
                self._workers.append(worker)
        return self

    def drain(self, timeout: float | None = None) -> bool:
        """Stop admitting, finish queued + in-flight work; True if idle.

        New submissions are shed with :class:`OverloadedError` the moment
        drain begins. Requires a started engine (an unstarted engine has
        nobody to drain the queue).
        """
        with self._state_lock:
            if self._state == NEW:
                raise RuntimeError("cannot drain an engine never started")
            if self._state == STOPPED:
                return True
            self._state = DRAINING
        self.admission.shed()
        return self.admission.wait_idle(timeout)

    def shutdown(
        self, drain: bool = True, timeout: float | None = None
    ) -> None:
        """Stop the engine; with ``drain`` finish queued work first.

        With ``drain``, queued futures *complete* instead of being
        abandoned — an engine that was never started but holds queued
        submissions spins up its workers just to run them down, so no
        accepted request is ever left unresolved by a drain shutdown.
        Without ``drain`` (abort), queued-but-unstarted requests fail
        with :class:`OverloadedError`; in-flight batches still complete.
        """
        with self._state_lock:
            if self._state == STOPPED:
                return
            started = self._state in (RUNNING, DRAINING)
        if drain and not started and self.admission.pending() > 0:
            self.start()
            started = True
        if drain and started:
            self.drain(timeout)
        self.admission.close()
        abandoned = self.admission.pop_all()
        for entry in abandoned:
            error = OverloadedError(
                "engine shut down before the request ran",
                stage="admission",
            )
            self.metrics.count("rejected")
            entry.future.set_exception(error)
        for worker in self._workers:
            worker.join(timeout=5.0)
        with self._state_lock:
            self._state = STOPPED

    def __enter__(self) -> "ServingEngine":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown(drain=exc_type is None)

    # -- submission ----------------------------------------------------------

    def submit(
        self,
        request: ServeRequest | None = None,
        *,
        kind: str | None = None,
        texts: Sequence[str] | str | None = None,
        priority: str = "interactive",
    ) -> Future:
        """Admit one request; returns a Future resolving to a ServeResult.

        Either pass a prebuilt :class:`ServeRequest` or the
        ``kind``/``texts``/``priority`` fields. Raises
        :class:`~repro.runtime.errors.InputError` on malformed input and
        :class:`~repro.runtime.errors.OverloadedError` when the request's
        priority queue is at its bound (load shedding — never blocks).
        """
        if request is None:
            if kind is None or texts is None:
                raise InputError(
                    "submit() needs a ServeRequest or kind= and texts=",
                    stage="admission",
                )
            if isinstance(texts, str):
                texts = (texts,)
            request = ServeRequest(
                kind=kind, texts=tuple(texts), priority=priority
            )
        if request.kind == KIND_DETECT and self.detector is None:
            raise InputError(
                "engine has no detector backend", stage="admission"
            )
        if request.kind == KIND_EXTRACT and self.extractor is None:
            raise InputError(
                "engine has no extractor backend", stage="admission"
            )
        self.metrics.count("submitted")
        if self.result_cache is not None:
            fast = self._serve_from_cache(request)
            if fast is not None:
                return fast
        entry = _QueuedRequest(
            request, _estimate_tokens(request.texts), self._clock()
        )
        self.admission.admit(entry)  # raises OverloadedError when shedding
        return entry.future

    def _cache_key(self, request: ServeRequest) -> str | None:
        """Content key of a request, or None when it cannot be pinned.

        The key hashes the request payload (kind + texts) with the
        backend model's weight fingerprint and quantization variant, so a
        hot-swapped checkpoint or a newly enabled int8 path can never be
        served another model's records. Unfitted backends get no key.
        """
        from repro.nn.quant import quantization_state

        backend = (
            self.detector if request.kind == KIND_DETECT else self.extractor
        )
        model = getattr(backend, "model", None)
        if model is None or not hasattr(model, "fingerprint"):
            return None
        payload = request.kind + "\x00" + "\x00".join(request.texts)
        return result_key(
            payload, model.fingerprint(), quantization_state(model) or ""
        )

    def _serve_from_cache(self, request: ServeRequest) -> Future | None:
        """Resolve a submit immediately on a cache hit (else None).

        Hits never enter admission: they cost no queue slot, no worker
        lease, and no batch-token budget — which is the point of probing
        before :meth:`AdmissionController.admit`.
        """
        key = self._cache_key(request)
        if key is None:
            return None
        values = self.result_cache.get(key)
        if values is None:
            self.metrics.count(f"cache.misses.{request.priority}")
            return None
        self.metrics.count(f"cache.hits.{request.priority}")
        self.metrics.count("cache_fast_path")
        self.metrics.count("completed")
        self.metrics.observe(f"{request.kind}.total", 0.0)
        future: Future = Future()
        future.set_result(
            ServeResult(
                kind=request.kind,
                # Detail records are mutable dicts; hand out copies so a
                # caller's edits cannot corrupt the cached entry.
                values=tuple(
                    dict(value) if isinstance(value, dict) else value
                    for value in values
                ),
                status=STATUS_OK,
                queue_wait_seconds=0.0,
                compute_seconds=0.0,
                total_seconds=0.0,
                batch_size=0,
            )
        )
        return future

    def detect(self, texts, priority: str = "interactive") -> Future:
        """Convenience: submit a detection request."""
        return self.submit(kind=KIND_DETECT, texts=texts, priority=priority)

    def extract(self, texts, priority: str = "interactive") -> Future:
        """Convenience: submit an extraction request."""
        return self.submit(kind=KIND_EXTRACT, texts=texts, priority=priority)

    # -- observability -------------------------------------------------------

    def metrics_snapshot(self) -> dict:
        """The SLO view: latency histograms, throughput, queue state."""
        snapshot = self.metrics.snapshot()
        snapshot["engine"] = {
            "state": self.state,
            "workers": len(self._workers),
            "queue_depth": {
                priority: self.admission.depth(priority)
                for priority in PRIORITIES
            },
            "pending": self.admission.pending(),
            "quarantined": len(self.quarantine),
            "breakers": {
                stage: breaker.state
                for stage, breaker in self._breakers.items()
            },
        }
        return snapshot

    # -- worker side ---------------------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            entry = self.admission.pop(timeout=0.05)
            if entry is None:
                if self.admission.closed:
                    return
                continue
            batch = self.admission.gather(
                entry,
                max_requests=self.config.max_batch_requests,
                max_tokens=self.config.max_batch_tokens,
                max_wait_seconds=self.config.max_wait_ms / 1000.0,
            )
            try:
                self._execute_batch(batch)
            except Exception as raw:  # noqa: BLE001 — workers must survive
                # A worker that dies takes every future it holds (and the
                # whole queue behind it) to an unresolved grave. Classify
                # whatever escaped the stage machinery, fail the batch's
                # futures with it, and keep the worker alive.
                error = classify_error(raw, stage=batch[0].request.kind)
                self.metrics.count("worker_faults")
                for entry in batch:
                    if not entry.future.done():
                        self.metrics.count("failed")
                        entry.future.set_exception(error)
            finally:
                self.admission.release(len(batch))

    def _backend(self, kind: str):
        if kind == KIND_DETECT:
            return lambda texts: list(self.detector.predict_proba(texts))
        return lambda texts: self.extractor.extract_batch(texts)

    def _execute_batch(self, batch: list) -> None:
        kind = batch[0].request.kind
        texts: list[str] = []
        for entry in batch:
            texts.extend(entry.request.texts)
        compute_start = self._clock()
        self.metrics.count("batches")
        self.metrics.count("batched_requests", len(batch))
        self.metrics.observe(f"{kind}.batch_rows", float(len(batch)))
        backend = self._backend(kind)
        try:
            values = run_stage(
                lambda: backend(texts),
                stage=kind,
                policy=self.retry_policy,
                breaker=self._breakers[kind],
                injector=self.fault_injector,
                counters=self.metrics.counters,
            )
        except ReproError as error:
            if len(batch) == 1:
                self._fail_or_degrade(batch[0], error, compute_start)
                return
            # Isolation: one poisoned request must not fail its
            # batch-mates — re-run each request alone.
            self.metrics.count("batch_isolations")
            for entry in batch:
                self._execute_single(entry)
            return
        compute_seconds = self._clock() - compute_start
        cursor = 0
        for entry in batch:
            span = len(entry.request.texts)
            self._resolve(
                entry,
                values[cursor : cursor + span],
                status=STATUS_OK,
                compute_start=compute_start,
                compute_seconds=compute_seconds,
                batch_size=len(batch),
            )
            cursor += span

    def _execute_single(self, entry) -> None:
        kind = entry.request.kind
        compute_start = self._clock()
        backend = self._backend(kind)
        try:
            values = run_stage(
                lambda: backend(list(entry.request.texts)),
                stage=kind,
                policy=self.retry_policy,
                breaker=self._breakers[kind],
                injector=self.fault_injector,
                counters=self.metrics.counters,
            )
        except ReproError as error:
            self._fail_or_degrade(entry, error, compute_start)
            return
        self._resolve(
            entry,
            values,
            status=STATUS_OK,
            compute_start=compute_start,
            compute_seconds=self._clock() - compute_start,
            batch_size=1,
        )

    def _fail_or_degrade(self, entry, error: ReproError, compute_start):
        """The per-request degradation ladder: fallback, then quarantine."""
        if (
            entry.request.kind == KIND_EXTRACT
            and self.fallback_extractor is not None
        ):
            try:
                values = run_stage(
                    lambda: self.fallback_extractor.extract_batch(
                        list(entry.request.texts)
                    ),
                    stage="fallback_extract",
                    policy=self.retry_policy,
                    breaker=self._breakers["fallback_extract"],
                    injector=self.fault_injector,
                    counters=self.metrics.counters,
                )
            except ReproError:
                pass
            else:
                self.metrics.count("degraded")
                self._resolve(
                    entry,
                    values,
                    status=STATUS_DEGRADED,
                    compute_start=compute_start,
                    compute_seconds=self._clock() - compute_start,
                    batch_size=1,
                )
                return
        self.metrics.count("failed")
        self.quarantine.append(
            {
                "kind": entry.request.kind,
                "priority": entry.request.priority,
                "texts": list(entry.request.texts),
                **error.context(),
            }
        )
        entry.future.set_exception(error)

    def _resolve(
        self,
        entry,
        values,
        *,
        status: str,
        compute_start: float,
        compute_seconds: float,
        batch_size: int,
    ) -> None:
        now = self._clock()
        kind = entry.request.kind
        queue_wait = max(0.0, compute_start - entry.admitted_at)
        total = max(0.0, now - entry.admitted_at)
        if status == STATUS_OK and self.result_cache is not None:
            # Key recomputed *after* compute so the entry is pinned to
            # the weights that actually produced these values (a model
            # hot-swapped mid-flight lands under its own fingerprint).
            key = self._cache_key(entry.request)
            if key is not None:
                # Store copies of mutable detail records: the caller gets
                # the originals and may edit them freely.
                self.result_cache.put(
                    key,
                    tuple(
                        dict(value) if isinstance(value, dict) else value
                        for value in values
                    ),
                )
        self.metrics.count("completed")
        self.metrics.observe(f"{kind}.queue_wait", queue_wait)
        self.metrics.observe(f"{kind}.compute", compute_seconds)
        self.metrics.observe(f"{kind}.total", total)
        entry.future.set_result(
            ServeResult(
                kind=kind,
                values=tuple(values),
                status=status,
                queue_wait_seconds=queue_wait,
                compute_seconds=compute_seconds,
                total_seconds=total,
                batch_size=batch_size,
            )
        )
