"""SLO-driven fleet autoscaling: decision core, live scaler, simulator.

The scaling decision is a pure function of per-tick observations
(:meth:`FleetAutoscaler.decide`), so the same hysteresis/cooldown logic
drives both the live :class:`~repro.serve.fleet.FleetRouter`
(:meth:`FleetAutoscaler.tick`) and the offline :class:`FleetSimulator`,
which replays a synthetic load trace through a queueing estimate to show
how a policy behaves *before* it is pointed at real traffic. Policy:

* **scale up** when queue-wait p95 breaches the target for
  ``breach_ticks`` consecutive ticks (hysteresis — a single slow tick is
  noise, a run of them is a trend);
* **scale down** when the fleet sat below ``low_water_fraction`` of the
  target with an (almost) empty queue for ``idle_ticks`` consecutive
  ticks;
* **cooldown** after any action, so the loop observes the effect of one
  step before taking the next — the classic guard against oscillation.

Everything is deterministic: no wall clock, no randomness beyond the
simulator's seeded trace.
"""

from __future__ import annotations

import dataclasses

import numpy as np

#: Decision actions.
SCALE_UP, SCALE_DOWN, HOLD = "scale_up", "scale_down", "hold"


def nearest_rank_p95(samples) -> float:
    """Nearest-rank p95 of a sample list (0.0 when empty)."""
    ordered = sorted(float(sample) for sample in samples)
    if not ordered:
        return 0.0
    rank = min(len(ordered) - 1, max(0, int(round(0.95 * len(ordered))) - 1))
    return ordered[rank]


@dataclasses.dataclass(frozen=True)
class AutoscalePolicy:
    """Autoscaler tuning knobs.

    Attributes:
        target_queue_wait_p95: the SLO — per-tick queue-wait p95 (seconds)
            above this is a breach.
        low_water_fraction: idle when p95 is below ``fraction * target``
            and the backlog is (almost) empty.
        min_replicas / max_replicas: scaling bounds.
        breach_ticks: consecutive breach ticks required to scale up.
        idle_ticks: consecutive idle ticks required to scale down.
        cooldown_ticks: ticks to hold after any scaling action.
        step: replicas added/removed per action.
    """

    target_queue_wait_p95: float = 0.05
    low_water_fraction: float = 0.2
    min_replicas: int = 1
    max_replicas: int = 8
    breach_ticks: int = 2
    idle_ticks: int = 5
    cooldown_ticks: int = 3
    step: int = 1

    def __post_init__(self) -> None:
        if self.target_queue_wait_p95 <= 0:
            raise ValueError("target_queue_wait_p95 must be positive")
        if not 0.0 < self.low_water_fraction < 1.0:
            raise ValueError("low_water_fraction must be in (0, 1)")
        if self.min_replicas < 1:
            raise ValueError("min_replicas must be positive")
        if self.max_replicas < self.min_replicas:
            raise ValueError("max_replicas must be >= min_replicas")
        if self.breach_ticks < 1 or self.idle_ticks < 1:
            raise ValueError("breach_ticks and idle_ticks must be positive")
        if self.cooldown_ticks < 0:
            raise ValueError("cooldown_ticks must be non-negative")
        if self.step < 1:
            raise ValueError("step must be positive")


class FleetAutoscaler:
    """Hysteresis + cooldown scaling loop over a :class:`AutoscalePolicy`.

    Feed it one observation per tick (either via :meth:`tick` against a
    live router, or :meth:`decide` with explicit numbers); it returns a
    decision dict ``{action, reason, replicas, target, queue_wait_p95}``.
    State is only the consecutive-tick counters — safe to pickle, trivial
    to test.
    """

    def __init__(self, policy: AutoscalePolicy | None = None) -> None:
        self.policy = policy or AutoscalePolicy()
        self._breaches = 0
        self._idles = 0
        self._cooldown = 0

    def decide(
        self,
        *,
        queue_wait_p95: float,
        pending: int,
        replicas: int,
    ) -> dict:
        """One scaling decision from this tick's observations (pure-ish:
        mutates only the hysteresis counters)."""
        policy = self.policy
        breach = queue_wait_p95 > policy.target_queue_wait_p95
        idle = (
            queue_wait_p95
            < policy.low_water_fraction * policy.target_queue_wait_p95
            and pending <= replicas
        )
        self._breaches = self._breaches + 1 if breach else 0
        self._idles = self._idles + 1 if idle else 0
        action, reason = HOLD, "within target"
        if self._cooldown > 0:
            self._cooldown -= 1
            reason = f"cooldown ({self._cooldown} ticks left)"
        elif (
            self._breaches >= policy.breach_ticks
            and replicas < policy.max_replicas
        ):
            action = SCALE_UP
            reason = (
                f"queue-wait p95 {queue_wait_p95:.4f}s > target "
                f"{policy.target_queue_wait_p95:.4f}s for "
                f"{self._breaches} ticks"
            )
        elif self._breaches >= policy.breach_ticks:
            reason = "sustained breach but already at max_replicas"
        elif self._idles >= policy.idle_ticks and replicas > policy.min_replicas:
            action = SCALE_DOWN
            reason = f"idle for {self._idles} ticks"
        elif self._idles >= policy.idle_ticks:
            reason = "sustained idle but already at min_replicas"
        target = replicas
        if action == SCALE_UP:
            target = min(policy.max_replicas, replicas + policy.step)
        elif action == SCALE_DOWN:
            target = max(policy.min_replicas, replicas - policy.step)
        if action != HOLD:
            self._breaches = 0
            self._idles = 0
            self._cooldown = policy.cooldown_ticks
        return {
            "action": action,
            "reason": reason,
            "replicas": replicas,
            "target": target,
            "queue_wait_p95": queue_wait_p95,
        }

    def tick(self, router) -> dict:
        """Observe a live router, decide, and apply the decision.

        Reads the queue-wait samples accumulated since the last tick
        (:meth:`FleetRouter.drain_recent_queue_waits` — a per-tick window,
        not the lifetime histogram) and calls ``router.scale_to`` when the
        decision is not a hold.
        """
        samples = router.drain_recent_queue_waits()
        decision = self.decide(
            queue_wait_p95=nearest_rank_p95(samples),
            pending=router.pending(),
            replicas=router.replica_count(),
        )
        decision["samples"] = len(samples)
        if decision["action"] != HOLD:
            decision["replicas_after"] = router.scale_to(decision["target"])
        else:
            decision["replicas_after"] = decision["replicas"]
        return decision


class FleetSimulator:
    """Deterministic what-if harness for an autoscale policy.

    Replays a seeded synthetic offered-load trace (requests per tick)
    against an M/M/c-flavoured queue-wait estimate and runs the *same*
    :class:`FleetAutoscaler` decision core over it, tick by tick. The
    point is not queueing-theory fidelity — it is a reproducible trace of
    *decisions*: when a policy scales, how far, and whether it
    oscillates, without starting a single thread.
    """

    def __init__(
        self,
        policy: AutoscalePolicy | None = None,
        *,
        replica_capacity: float = 100.0,
        service_seconds: float = 0.01,
        seed: int = 0,
    ) -> None:
        if replica_capacity <= 0:
            raise ValueError("replica_capacity must be positive")
        if service_seconds <= 0:
            raise ValueError("service_seconds must be positive")
        self.policy = policy or AutoscalePolicy()
        self.replica_capacity = replica_capacity
        self.service_seconds = service_seconds
        self.seed = seed

    def load_trace(self, ticks: int) -> list[float]:
        """A seeded ramp / plateau / decay offered-load trace (req/tick)."""
        rng = np.random.default_rng(self.seed)
        ramp = ticks // 3
        plateau = ticks // 3
        decay = ticks - ramp - plateau
        peak = 3.0 * self.replica_capacity
        trace: list[float] = []
        for index in range(ramp):
            trace.append(peak * (index + 1) / max(1, ramp))
        trace.extend(peak for _ in range(plateau))
        for index in range(decay):
            trace.append(peak * (1.0 - (index + 1) / max(1, decay)) * 0.2)
        noise = rng.normal(0.0, 0.02 * self.replica_capacity, size=ticks)
        return [max(0.0, offered + jitter) for offered, jitter in zip(trace, noise)]

    def estimate_queue_wait_p95(
        self, offered: float, replicas: int, backlog: float
    ) -> float:
        """Crude utilisation-driven wait estimate (blows up near rho=1)."""
        capacity = replicas * self.replica_capacity
        rho = min(0.999, (offered + backlog) / capacity) if capacity else 0.999
        # Single-queue wait scaled by utilisation: ~0 when idle, steep
        # near saturation — the shape the hysteresis logic cares about.
        return self.service_seconds * rho / max(1e-3, (1.0 - rho))

    def run(self, ticks: int = 60, start_replicas: int | None = None) -> dict:
        """Simulate ``ticks`` steps; returns the full decision trace."""
        policy = self.policy
        scaler = FleetAutoscaler(policy)
        replicas = (
            policy.min_replicas if start_replicas is None else start_replicas
        )
        backlog = 0.0
        trace = self.load_trace(ticks)
        steps: list[dict] = []
        for tick, offered in enumerate(trace):
            wait_p95 = self.estimate_queue_wait_p95(offered, replicas, backlog)
            served = min(offered + backlog, replicas * self.replica_capacity)
            backlog = max(0.0, offered + backlog - served)
            decision = scaler.decide(
                queue_wait_p95=wait_p95,
                pending=int(backlog),
                replicas=replicas,
            )
            replicas = decision["target"]
            steps.append(
                {
                    "tick": tick,
                    "offered": round(offered, 3),
                    "backlog": round(backlog, 3),
                    "queue_wait_p95": round(wait_p95, 6),
                    "action": decision["action"],
                    "replicas": replicas,
                }
            )
        actions = [step["action"] for step in steps]
        return {
            "seed": self.seed,
            "ticks": ticks,
            "policy": dataclasses.asdict(policy),
            "steps": steps,
            "peak_replicas": max(step["replicas"] for step in steps),
            "final_replicas": replicas,
            "scale_ups": actions.count(SCALE_UP),
            "scale_downs": actions.count(SCALE_DOWN),
        }
