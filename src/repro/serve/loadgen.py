"""Closed- and open-loop load generation for the serving engine.

Drives a :class:`~repro.serve.engine.ServingEngine` with a seeded,
deterministic request schedule and reports client-observed latency
percentiles and throughput per offered-load level:

* **closed loop** — ``concurrency`` synthetic clients submit back-to-back
  (each waits for its result before sending the next request), the classic
  saturation-throughput measurement;
* **open loop** — requests arrive on a pre-computed seeded Poisson
  schedule regardless of completions, which is what exposes queueing and
  load shedding at offered loads beyond capacity.

Also provides :func:`build_demo_backend`: a deterministic, *untrained*
detector + extractor pair (real tokenizers, real transformer forward
passes, seeded random weights) so the serving bench and the CLI
``serve-bench`` subcommand measure the true compute path without minutes
of fine-tuning first.
"""

from __future__ import annotations

import dataclasses
import threading
import time
from concurrent.futures import Future

import numpy as np

from repro.runtime.errors import OverloadedError
from repro.serve.engine import ServingEngine, ServingConfig

#: Schema version stamped into serving bench reports.
REPORT_SCHEMA_VERSION = 1


@dataclasses.dataclass(frozen=True)
class LoadLevel:
    """One offered-load level of the bench.

    ``mode="closed"`` interprets ``offered`` as client concurrency;
    ``mode="open"`` interprets it as the arrival rate in requests/second.
    """

    name: str
    mode: str  # "closed" | "open"
    offered: float
    num_requests: int

    def __post_init__(self) -> None:
        if self.mode not in ("closed", "open"):
            raise ValueError("mode must be 'closed' or 'open'")
        if self.offered <= 0 or self.num_requests <= 0:
            raise ValueError("offered and num_requests must be positive")


def build_demo_backend(seed: int = 0, num_objectives: int = 64):
    """A deterministic untrained detector + extractor pair for load tests.

    Both models run the genuine tokenize -> encode -> classify path with
    seeded random weights; outputs are meaningless but bit-deterministic,
    which is exactly what a serving benchmark needs.
    """
    from repro.core.extractor import ExtractorConfig, WeakSupervisionExtractor
    from repro.datasets.generator import ObjectiveGenerator
    from repro.goalspotter.detector import DetectorConfig, ObjectiveDetector
    from repro.models.sequence_classifier import SequenceClassifier
    from repro.models.token_classifier import TokenClassifier
    from repro.nn.encoder import EncoderConfig
    from repro.text.bpe import BpeTokenizer

    objectives = ObjectiveGenerator(seed=seed).generate_many(num_objectives)
    corpus = [objective.text for objective in objectives]

    extractor = WeakSupervisionExtractor(
        ExtractorConfig(num_merges=200, max_len=48)
    )
    words = [
        token.text
        for text in corpus
        for token in extractor.word_tokenizer.tokenize(
            extractor.normalizer(text)
        )
    ]
    extractor.tokenizer = BpeTokenizer.train(words, num_merges=200)
    rng = np.random.default_rng(seed)
    extractor.model = TokenClassifier(
        EncoderConfig(
            vocab_size=len(extractor.tokenizer.vocab),
            dim=32,
            num_layers=2,
            num_heads=4,
            ffn_dim=64,
            max_len=48,
            dropout=0.0,
        ),
        num_labels=len(extractor.scheme),
        rng=rng,
    )

    detector = ObjectiveDetector(
        DetectorConfig(
            dim=32, num_layers=1, num_heads=4, ffn_dim=64,
            max_len=48, num_merges=200,
        )
    )
    detector_words = [
        word
        for text in corpus
        for word in detector.word_tokenizer.words(detector.normalizer(text))
    ]
    detector.tokenizer = BpeTokenizer.train(detector_words, num_merges=200)
    detector.model = SequenceClassifier(
        EncoderConfig(
            vocab_size=len(detector.tokenizer.vocab),
            dim=32,
            num_layers=1,
            num_heads=4,
            ffn_dim=64,
            max_len=48,
            dropout=0.0,
        ),
        2,
        np.random.default_rng(seed + 1),
    )
    return detector, extractor


def build_swappable_extractor(seed: int = 0, num_objectives: int = 24):
    """An untrained extractor whose ``save()``/``load()`` round-trips.

    :func:`build_demo_backend` hand-shrinks its encoder below the
    model-zoo geometry for speed, but :meth:`WeakSupervisionExtractor.load`
    rebuilds the model from the zoo spec — so demo-backend checkpoints do
    not round-trip. Hot-swap tests and the ``serve-fleet --swap`` CLI
    need a checkpoint that reloads bit-exactly; this builds the real
    (smallest) zoo geometry via :meth:`build_model`. Slower per request
    than the demo backend, so keep request counts modest.
    """
    from repro.core.extractor import ExtractorConfig, WeakSupervisionExtractor
    from repro.datasets.generator import ObjectiveGenerator
    from repro.text.bpe import BpeTokenizer

    objectives = ObjectiveGenerator(seed=seed).generate_many(num_objectives)
    corpus = [objective.text for objective in objectives]
    extractor = WeakSupervisionExtractor(
        ExtractorConfig(
            model="distilroberta", num_merges=200, max_len=48, seed=seed
        )
    )
    words = [
        token.text
        for text in corpus
        for token in extractor.word_tokenizer.tokenize(
            extractor.normalizer(text)
        )
    ]
    extractor.tokenizer = BpeTokenizer.train(words, num_merges=200)
    extractor.model = extractor.build_model()
    return extractor


def build_request_texts(seed: int, num_texts: int) -> list[str]:
    """A deterministic stream of objective-like request texts."""
    from repro.datasets.generator import ObjectiveGenerator

    objectives = ObjectiveGenerator(seed=seed).generate_many(num_texts)
    return [objective.text for objective in objectives]


def _latency_summary(latencies: list[float]) -> dict[str, float]:
    if not latencies:
        return {
            "count": 0, "mean_seconds": 0.0, "max_seconds": 0.0,
            "p50": 0.0, "p95": 0.0, "p99": 0.0,
        }
    ordered = sorted(latencies)

    def rank(q: float) -> float:
        index = min(len(ordered) - 1, max(0, int(round(q * len(ordered))) - 1))
        return ordered[index]

    return {
        "count": len(ordered),
        "mean_seconds": sum(ordered) / len(ordered),
        "max_seconds": ordered[-1],
        "p50": rank(0.50),
        "p95": rank(0.95),
        "p99": rank(0.99),
    }


def _run_closed_loop(
    engine: ServingEngine,
    texts: list[str],
    concurrency: int,
    num_requests: int,
    kind: str,
) -> tuple[list[Future], float, int]:
    cursor_lock = threading.Lock()
    cursor = [0]
    futures: list[Future] = []
    rejected = [0]

    def client() -> None:
        while True:
            with cursor_lock:
                index = cursor[0]
                if index >= num_requests:
                    return
                cursor[0] = index + 1
            text = texts[index % len(texts)]
            try:
                future = engine.submit(kind=kind, texts=text)
            except OverloadedError:
                with cursor_lock:
                    rejected[0] += 1
                continue
            with cursor_lock:
                futures.append(future)
            try:
                future.result(timeout=60.0)
            except Exception:
                pass  # failures are tallied from the futures afterwards

    clients = [
        threading.Thread(target=client, name=f"loadgen-client-{i}")
        for i in range(concurrency)
    ]
    started = time.perf_counter()
    for thread in clients:
        thread.start()
    for thread in clients:
        thread.join()
    elapsed = time.perf_counter() - started
    return futures, elapsed, rejected[0]


def _run_open_loop(
    engine: ServingEngine,
    texts: list[str],
    rate: float,
    num_requests: int,
    kind: str,
    seed: int,
) -> tuple[list[Future], float, int]:
    # Pre-computed seeded Poisson arrival schedule: the offered load is a
    # pure function of (seed, rate, num_requests), not of the engine.
    rng = np.random.default_rng([seed & 0x7FFFFFFF, int(rate * 1000)])
    gaps = rng.exponential(1.0 / rate, size=num_requests)
    arrivals = np.cumsum(gaps)
    futures: list[Future] = []
    rejected = 0
    started = time.perf_counter()
    for index in range(num_requests):
        now = time.perf_counter() - started
        delay = arrivals[index] - now
        if delay > 0:
            time.sleep(delay)
        try:
            futures.append(
                engine.submit(kind=kind, texts=texts[index % len(texts)])
            )
        except OverloadedError:
            rejected += 1
    for future in futures:
        try:
            future.result(timeout=60.0)
        except Exception:
            pass  # failures are counted from the engine metrics
    elapsed = time.perf_counter() - started
    return futures, elapsed, rejected


def run_load_level(
    engine: ServingEngine,
    texts: list[str],
    level: LoadLevel,
    *,
    kind: str = "extract",
    seed: int = 0,
) -> dict:
    """Drive one offered-load level and summarize what the clients saw."""
    if level.mode == "closed":
        futures, elapsed, rejected = _run_closed_loop(
            engine, texts, int(level.offered), level.num_requests, kind
        )
    else:
        futures, elapsed, rejected = _run_open_loop(
            engine, texts, level.offered, level.num_requests, kind, seed
        )
    latencies: list[float] = []
    queue_waits: list[float] = []
    computes: list[float] = []
    batch_rows: list[int] = []
    failed = 0
    for future in futures:
        error = future.exception(timeout=0)
        if error is not None:
            failed += 1
            continue
        result = future.result()
        latencies.append(result.total_seconds)
        queue_waits.append(result.queue_wait_seconds)
        computes.append(result.compute_seconds)
        batch_rows.append(result.batch_size)
    completed = len(latencies)
    return {
        "level": level.name,
        "mode": level.mode,
        "offered": level.offered,
        "requests": level.num_requests,
        "completed": completed,
        "rejected": rejected,
        "failed": failed,
        "wall_seconds": elapsed,
        "throughput_rps": completed / elapsed if elapsed > 0 else 0.0,
        "latency": _latency_summary(latencies),
        "queue_wait": _latency_summary(queue_waits),
        "compute": _latency_summary(computes),
        "mean_batch_rows": (
            sum(batch_rows) / len(batch_rows) if batch_rows else 0.0
        ),
    }


def run_serving_bench(
    levels: list[LoadLevel],
    *,
    seed: int = 0,
    num_texts: int = 96,
    num_workers: int = 2,
    max_batch_requests: int = 8,
    max_batch_tokens: int = 1024,
    max_wait_ms: float = 2.0,
    queue_depth: int = 256,
    kind: str = "extract",
) -> dict:
    """The full serving benchmark: micro-batching vs. batch-size-1.

    Every level runs twice over the same deterministic backend and request
    stream — once with the dynamic micro-batcher, once with
    ``max_batch_requests=1`` (request-at-a-time serving) — and the report
    compares throughput and p95 latency at the heaviest level.
    """
    detector, extractor = build_demo_backend(seed=seed)
    texts = build_request_texts(seed + 1, num_texts)
    # Warm the BPE/normalize caches and numpy dispatch once, up front:
    # steady-state serving is cache-hot, and warming here keeps the first
    # measured mode from paying the cold-start bill for both.
    if kind == "detect":
        detector.predict_proba(texts)
    else:
        extractor.extract_batch(texts)
    mode_configs = {
        "microbatch": ServingConfig(
            num_workers=num_workers,
            max_batch_requests=max_batch_requests,
            max_batch_tokens=max_batch_tokens,
            max_wait_ms=max_wait_ms,
            queue_depth=queue_depth,
        ),
        "batch1": ServingConfig(
            num_workers=num_workers,
            max_batch_requests=1,
            max_batch_tokens=max_batch_tokens,
            max_wait_ms=max_wait_ms,
            queue_depth=queue_depth,
        ),
    }
    level_reports = []
    for level in levels:
        modes = {}
        for mode_name, config in mode_configs.items():
            with ServingEngine(
                detector=detector, extractor=extractor, config=config
            ) as engine:
                modes[mode_name] = run_load_level(
                    engine, texts, level, kind=kind, seed=seed
                )
                modes[mode_name]["engine_metrics"] = engine.metrics_snapshot()
        level_reports.append(
            {"level": level.name, "offered": level.offered,
             "mode": level.mode, "modes": modes}
        )

    heaviest = level_reports[-1]["modes"]
    micro, single = heaviest["microbatch"], heaviest["batch1"]
    comparison = {
        "level": level_reports[-1]["level"],
        "microbatch_throughput_rps": micro["throughput_rps"],
        "batch1_throughput_rps": single["throughput_rps"],
        "throughput_speedup": (
            micro["throughput_rps"] / single["throughput_rps"]
            if single["throughput_rps"] > 0
            else 0.0
        ),
        "microbatch_p95_seconds": micro["latency"]["p95"],
        "batch1_p95_seconds": single["latency"]["p95"],
        "microbatch_wins": (
            micro["throughput_rps"] > single["throughput_rps"]
            and micro["latency"]["p95"] <= single["latency"]["p95"] * 1.05
        ),
    }
    return {
        "schema_version": REPORT_SCHEMA_VERSION,
        "config": {
            "seed": seed,
            "num_texts": num_texts,
            "num_workers": num_workers,
            "max_batch_requests": max_batch_requests,
            "max_batch_tokens": max_batch_tokens,
            "max_wait_ms": max_wait_ms,
            "queue_depth": queue_depth,
            "kind": kind,
            "levels": [dataclasses.asdict(level) for level in levels],
        },
        "levels": level_reports,
        "comparison": comparison,
    }
