"""SLO metrics for the online serving tier.

The batch runtime reports throughput per *run* (:mod:`repro.runtime.profiling`);
an online engine needs distributions per *request*: latency percentiles,
the queue-wait vs. compute split, and shed/degrade counts. This module
extends the profiling layer with thread-safe latency histograms and a
snapshot API the engine exposes via ``ServingEngine.metrics_snapshot()``.

Everything here is stdlib + plain floats, serializes to JSON, and is safe
to touch from many worker threads at once.
"""

from __future__ import annotations

import threading
import time

from repro.runtime.profiling import PerfCounters

#: Quantiles every histogram snapshot reports.
SLO_QUANTILES = (("p50", 0.50), ("p95", 0.95), ("p99", 0.99))


class LatencyHistogram:
    """Bounded reservoir of latency samples with exact rank quantiles.

    Keeps the most recent ``max_samples`` observations in a ring buffer
    (count/sum/max stay exact over the full lifetime) and computes
    p50/p95/p99 by nearest-rank over the retained window. Thread-safe.
    """

    def __init__(self, max_samples: int = 8192) -> None:
        if max_samples <= 0:
            raise ValueError("max_samples must be positive")
        self.max_samples = max_samples
        self._samples: list[float] = []
        self._cursor = 0
        self._count = 0
        self._sum = 0.0
        self._max = 0.0
        self._lock = threading.Lock()

    def observe(self, seconds: float) -> None:
        value = float(seconds)
        with self._lock:
            self._count += 1
            self._sum += value
            if value > self._max:
                self._max = value
            if len(self._samples) < self.max_samples:
                self._samples.append(value)
            else:
                self._samples[self._cursor] = value
                self._cursor = (self._cursor + 1) % self.max_samples

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    def quantile(self, q: float) -> float:
        """Nearest-rank quantile over the retained window (0 if empty)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        with self._lock:
            ordered = sorted(self._samples)
        if not ordered:
            return 0.0
        rank = min(len(ordered) - 1, max(0, int(round(q * len(ordered))) - 1))
        if q <= 0.0:
            rank = 0
        return ordered[rank]

    def snapshot(self) -> dict[str, float]:
        """JSON-ready summary: count, mean, max, and the SLO quantiles."""
        with self._lock:
            count = self._count
            total = self._sum
            peak = self._max
            ordered = sorted(self._samples)
        summary = {
            "count": count,
            "mean_seconds": total / count if count else 0.0,
            "max_seconds": peak,
        }
        for name, q in SLO_QUANTILES:
            if not ordered:
                summary[name] = 0.0
                continue
            rank = min(
                len(ordered) - 1, max(0, int(round(q * len(ordered))) - 1)
            )
            summary[name] = ordered[rank]
        return summary


class SloMetrics:
    """The engine's metrics registry: counters + named latency histograms.

    Histogram names follow ``<kind>.<phase>`` (``extract.queue_wait``,
    ``extract.compute``, ``detect.total`` ...); counters use flat names
    (``completed``, ``rejected``, ``degraded``, ``batches`` ...). The
    snapshot derives throughput from ``completed`` over the observation
    window so an idle engine reports a decaying rate, not a stale one.
    """

    def __init__(
        self,
        max_samples: int = 8192,
        clock=time.monotonic,
    ) -> None:
        self.counters = PerfCounters()
        self._histograms: dict[str, LatencyHistogram] = {}
        self._max_samples = max_samples
        self._lock = threading.Lock()
        self._clock = clock
        self._started_at = clock()

    def histogram(self, name: str) -> LatencyHistogram:
        with self._lock:
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = LatencyHistogram(self._max_samples)
                self._histograms[name] = histogram
            return histogram

    def observe(self, name: str, seconds: float) -> None:
        self.histogram(name).observe(seconds)

    def count(self, name: str, amount: float = 1.0) -> None:
        self.counters.add(name, amount)

    def snapshot(self) -> dict:
        """One consistent JSON-ready view of every counter and histogram."""
        with self._lock:
            histograms = dict(self._histograms)
        counters = self.counters.snapshot()
        elapsed = max(self._clock() - self._started_at, 1e-9)
        completed = counters.get("completed", 0.0)
        return {
            "uptime_seconds": elapsed,
            "counters": counters,
            "latency": {
                name: histogram.snapshot()
                for name, histogram in sorted(histograms.items())
            },
            "throughput": {
                "completed": completed,
                "requests_per_second": completed / elapsed,
            },
            "cache": _cache_view(counters),
        }


def merge_counters(snapshots) -> dict[str, float]:
    """Sum flat counter dicts (one per replica) into one fleet-wide view.

    The fleet router aggregates its replicas' ``SloMetrics`` counters with
    this before deriving fleet-level rates — counters are additive across
    engines, unlike latency quantiles (which the router observes itself,
    per completed request, into its own histograms).
    """
    merged: dict[str, float] = {}
    for snapshot in snapshots:
        for name, value in snapshot.items():
            merged[name] = merged.get(name, 0.0) + value
    return merged


def fleet_cache_view(counter_snapshots, cache_stats_snapshots=()) -> dict:
    """The fleet-wide result-cache view: merged hit rates + store totals.

    ``counter_snapshots`` are per-replica ``SloMetrics`` counter dicts
    (carrying the submit-time ``cache.hits/misses.<priority>`` counters);
    ``cache_stats_snapshots`` are per-replica
    :meth:`repro.runtime.rescache.CacheStats.snapshot` dicts. Each
    replica probes only its own :class:`~repro.runtime.rescache.ResultCache`,
    so hit-rate is only meaningful fleet-wide after this merge — a
    request that hits on one replica may miss on its siblings.
    """
    view = _cache_view(merge_counters(counter_snapshots))
    store = {"hits": 0.0, "misses": 0.0, "evictions": 0.0, "insertions": 0.0}
    for snapshot in cache_stats_snapshots:
        for key in store:
            store[key] += float(snapshot.get(key, 0.0))
    lookups = store["hits"] + store["misses"]
    store["hit_rate"] = store["hits"] / lookups if lookups else 0.0
    view["store"] = store
    return view


def _cache_view(counters: dict[str, float]) -> dict:
    """Per-priority result-cache hit rates from the flat counters.

    The engine counts ``cache.hits.<priority>`` / ``cache.misses.<priority>``
    at submit time; this folds them into ``{priority: {hits, misses,
    hit_rate}}`` so SLO dashboards can see who benefits from the fast path
    (interactive traffic usually should; bulk sweeps usually churn).
    """
    priorities: dict[str, dict[str, float]] = {}
    for name, value in counters.items():
        for verdict, prefix in (
            ("hits", "cache.hits."),
            ("misses", "cache.misses."),
        ):
            if name.startswith(prefix):
                priority = name[len(prefix):]
                priorities.setdefault(
                    priority, {"hits": 0.0, "misses": 0.0}
                )[verdict] = value
    for stats in priorities.values():
        lookups = stats["hits"] + stats["misses"]
        stats["hit_rate"] = stats["hits"] / lookups if lookups else 0.0
    return {
        "fast_path": counters.get("cache_fast_path", 0.0),
        "by_priority": dict(sorted(priorities.items())),
    }
