"""Fleet-scale serving: a replicated router with failover and hot-swap.

:class:`FleetRouter` composes N :class:`~repro.serve.engine.ServingEngine`
replicas behind one ``submit() -> Future`` front door (same signature and
shedding semantics as a single engine, so the load generator and CLI
drive either interchangeably):

* **routing** — a pluggable :class:`~repro.serve.router.RoutingPolicy`
  (round-robin, least-loaded, token-cost-aware) picks among replicas
  that per-replica :class:`~repro.serve.router.ReplicaHealth` admits
  (consecutive-failure ejection, probationary re-admission, terminal
  ``dead``);
* **at-least-once failover** — a request the router accepted is never
  lost to a replica death: every replica sees the shared model through a
  crash-aware proxy, so a killed replica's in-flight and queued work
  fails fast with :class:`~repro.runtime.errors.ReplicaCrashError` and
  the router re-dispatches it to a healthy replica. Results are bitwise
  identical no matter which replica serves (all replicas of a generation
  share one set of weights, and the PR 1/PR 3 width-invariance guarantee
  makes batching composition irrelevant);
* **blue-green hot-swap** — :meth:`FleetRouter.swap_model` loads a new
  checkpoint through the manifest/SHA-256-verified
  :meth:`~repro.core.extractor.WeakSupervisionExtractor.load` path,
  checks a config-hash gate and a probe-based equivalence gate, builds
  fully-started fresh replicas, checks the ``swap_abort`` fault site,
  atomically cuts routing over, and drains the old generation with the
  router's lease-exact per-replica in-flight counters
  (``loading → gating → starting → cutover → draining → retired``). Any
  failure before cutover aborts the swap and leaves the old fleet
  untouched; a swap never causes a rejection — the old generation keeps
  serving until the instant the new one takes over;
* **chaos sites** — the router checks the fleet-level
  :class:`~repro.runtime.resilience.FaultInjector` sites
  ``replica_crash`` (kill the selected replica mid-dispatch),
  ``replica_stall`` (health strike + reroute), and ``swap_abort``.

See DESIGN.md §6f and the README "Fleet serving" section.
"""

from __future__ import annotations

import dataclasses
import threading
import time
from collections import deque
from collections.abc import Sequence
from concurrent.futures import Future
from pathlib import Path

from repro.runtime.errors import (
    InputError,
    OverloadedError,
    ReplicaCrashError,
    ReproError,
)
from repro.serve.engine import (
    ServeRequest,
    ServingConfig,
    ServingEngine,
    _estimate_tokens,
)
from repro.serve.metrics import SloMetrics, fleet_cache_view, merge_counters
from repro.serve.router import ReplicaHealth, make_policy

#: Swap state-machine states, in happy-path order.
SWAP_STATES = (
    "loading",
    "gating",
    "starting",
    "cutover",
    "draining",
    "retired",
)
SWAP_COMPLETED = "completed"
SWAP_ABORTED = "aborted"


@dataclasses.dataclass(frozen=True)
class FleetConfig:
    """Fleet tuning knobs.

    Attributes:
        replicas: initial replica count.
        policy: routing policy name (see
            :data:`repro.serve.router.ROUTING_POLICIES`).
        engine: per-replica :class:`ServingConfig`.
        failure_threshold: consecutive replica-attributable failures
            before a replica is ejected from routing.
        readmission_seconds: ejection cooldown before a replica is
            re-admitted on probation.
        max_redispatch: failover re-dispatch attempts per request before
            the router gives up and fails the request.
        drain_timeout: seconds to wait for an old generation (or a
            scaled-down replica) to finish its in-flight work.
        probe_texts: default probe inputs for the hot-swap equivalence
            gate (empty = gate records ``skipped`` unless the caller
            passes probes).
    """

    replicas: int = 2
    policy: str = "least-loaded"
    engine: ServingConfig = dataclasses.field(default_factory=ServingConfig)
    failure_threshold: int = 3
    readmission_seconds: float = 0.25
    max_redispatch: int = 3
    drain_timeout: float = 30.0
    probe_texts: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.replicas < 1:
            raise ValueError("a fleet needs at least one replica")
        if self.failure_threshold < 1:
            raise ValueError("failure_threshold must be positive")
        if self.readmission_seconds < 0:
            raise ValueError("readmission_seconds must be non-negative")
        if self.max_redispatch < 1:
            raise ValueError("max_redispatch must be positive")
        if self.drain_timeout <= 0:
            raise ValueError("drain_timeout must be positive")


@dataclasses.dataclass
class SwapReport:
    """What one :meth:`FleetRouter.swap_model` attempt did.

    ``states`` is the path actually traversed through the swap state
    machine; an aborted swap's last entry names where it stopped.
    """

    status: str  # completed | aborted
    from_generation: int
    to_generation: int
    states: list[str]
    reason: str = ""
    config_hash_checked: bool = False
    gate: dict = dataclasses.field(default_factory=dict)
    replicas: int = 0
    drained_requests: int = 0
    rejections_during_swap: int = 0

    @property
    def ok(self) -> bool:
        return self.status == SWAP_COMPLETED

    def as_dict(self) -> dict:
        return dataclasses.asdict(self)


@dataclasses.dataclass
class _Generation:
    """One model generation: the shared backends every replica proxies."""

    index: int
    detector: object | None
    extractor: object | None
    fallback: object | None


class _ReplicaBackend:
    """Crash-aware view of a shared backend, one per replica.

    All replicas of a generation serve the *same* model object (which is
    what makes results bitwise identical across replicas); the proxy is
    what lets one replica die without touching its siblings: after
    :meth:`crash`, every call raises
    :class:`~repro.runtime.errors.ReplicaCrashError`, so the dead
    replica's in-flight batches fail fast and the router fails them over.
    """

    __slots__ = ("_replica_id", "_target", "_crashed")

    def __init__(self, replica_id: str, target) -> None:
        self._replica_id = replica_id
        self._target = target
        self._crashed = threading.Event()

    @property
    def model(self):
        # The engine's result-cache key path reads ``backend.model``.
        return getattr(self._target, "model", None)

    def crash(self) -> None:
        self._crashed.set()

    def _guard(self, stage: str) -> None:
        if self._crashed.is_set():
            raise ReplicaCrashError(
                f"replica {self._replica_id} crashed mid-flight",
                stage=stage,
            )

    def predict_proba(self, texts):
        self._guard("replica_crash")
        return self._target.predict_proba(texts)

    def extract_batch(self, texts):
        self._guard("replica_crash")
        return self._target.extract_batch(texts)


class Replica:
    """One serving replica: engine + health + router-side lease counters.

    ``inflight``/``outstanding_tokens`` count requests the router
    dispatched here and has not yet seen resolve — the lease-exact
    counters the hot-swap drain and the token-cost policy read.
    """

    def __init__(
        self,
        replica_id: str,
        generation: int,
        engine: ServingEngine,
        backends: list[_ReplicaBackend],
        health: ReplicaHealth,
        idle_cond: threading.Condition,
    ) -> None:
        self.replica_id = replica_id
        self.generation = generation
        self.engine = engine
        self.health = health
        self._backends = backends
        self._idle_cond = idle_cond
        self._inflight = 0
        self._tokens = 0

    @property
    def dead(self) -> bool:
        return self.health.dead

    @property
    def inflight(self) -> int:
        with self._idle_cond:
            return self._inflight

    def load(self) -> int:
        with self._idle_cond:
            return self._inflight

    def outstanding_tokens(self) -> int:
        with self._idle_cond:
            return self._tokens

    def begin(self, cost: int) -> None:
        with self._idle_cond:
            self._inflight += 1
            self._tokens += cost

    def finish(self, cost: int) -> None:
        with self._idle_cond:
            self._inflight -= 1
            self._tokens -= cost
            self._idle_cond.notify_all()

    def crash_backends(self) -> None:
        for backend in self._backends:
            backend.crash()


class FleetRouter:
    """Distribute submissions over N serving replicas with failover.

    Args:
        detector / extractor / fallback_extractor: the shared backends
            (same contract as :class:`ServingEngine`); every replica
            serves them through its own crash-aware proxy.
        config: :class:`FleetConfig` knobs.
        retry_policy: per-stage retry policy handed to every replica.
        fault_injector: deterministic chaos hooks — shared with the
            replica engines (``detect``/``extract`` sites) and checked by
            the router at ``replica_crash``/``replica_stall``/
            ``swap_abort``.
        clock: injectable monotonic clock.
    """

    def __init__(
        self,
        detector=None,
        extractor=None,
        *,
        fallback_extractor=None,
        config: FleetConfig | None = None,
        retry_policy=None,
        fault_injector=None,
        clock=time.monotonic,
    ) -> None:
        if detector is None and extractor is None:
            raise ValueError("a fleet needs a detector and/or an extractor")
        self.config = config or FleetConfig()
        self.policy = make_policy(self.config.policy)
        self.fault_injector = fault_injector
        self.metrics = SloMetrics(clock=clock)
        self._retry_policy = retry_policy
        self._clock = clock
        self._lock = threading.RLock()
        self._idle_cond = threading.Condition(threading.RLock())
        self._generation = _Generation(
            index=0,
            detector=detector,
            extractor=extractor,
            fallback=fallback_extractor,
        )
        self._replicas: list[Replica] = []
        self._graveyard: list[Replica] = []  # crashed replicas
        self._retired: list[Replica] = []  # drained out (swap / scale-down)
        self._next_replica = 0
        self._started = False
        self._stopped = False
        self._swap_lock = threading.Lock()
        #: Queue-wait samples since the autoscaler last looked (bounded).
        self._recent_queue_waits: deque[float] = deque(maxlen=8192)
        for _ in range(self.config.replicas):
            self._replicas.append(self._build_replica(self._generation))

    # -- replica construction ------------------------------------------------

    def _build_replica(self, generation: _Generation) -> Replica:
        with self._lock:
            replica_id = f"r{self._next_replica:03d}"
            self._next_replica += 1
        backends: list[_ReplicaBackend] = []

        def proxy(target):
            if target is None:
                return None
            wrapped = _ReplicaBackend(replica_id, target)
            backends.append(wrapped)
            return wrapped

        engine = ServingEngine(
            detector=proxy(generation.detector),
            extractor=proxy(generation.extractor),
            fallback_extractor=proxy(generation.fallback),
            config=self.config.engine,
            retry_policy=self._retry_policy,
            fault_injector=self.fault_injector,
            clock=self._clock,
        )
        health = ReplicaHealth(
            failure_threshold=self.config.failure_threshold,
            readmission_seconds=self.config.readmission_seconds,
            clock=self._clock,
        )
        return Replica(
            replica_id,
            generation.index,
            engine,
            backends,
            health,
            self._idle_cond,
        )

    # -- lifecycle -----------------------------------------------------------

    @property
    def generation(self) -> int:
        with self._lock:
            return self._generation.index

    def start(self) -> "FleetRouter":
        """Start every replica engine; idempotent while running."""
        with self._lock:
            if self._stopped:
                raise RuntimeError("cannot start a stopped fleet")
            self._started = True
            replicas = list(self._replicas)
        for replica in replicas:
            replica.engine.start()
        return self

    def shutdown(self, drain: bool = True, timeout: float | None = None) -> None:
        """Stop the fleet; with ``drain`` every queued future completes."""
        with self._lock:
            if self._stopped:
                return
            self._stopped = True
            replicas = list(self._replicas)
        for replica in replicas:
            replica.engine.shutdown(drain=drain, timeout=timeout)

    def __enter__(self) -> "FleetRouter":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown(drain=exc_type is None)

    # -- introspection -------------------------------------------------------

    def live_replicas(self) -> list[str]:
        with self._lock:
            return [replica.replica_id for replica in self._replicas]

    def replica_count(self) -> int:
        with self._lock:
            return len(self._replicas)

    def pending(self) -> int:
        """Requests dispatched (or queued) and not yet resolved, fleet-wide."""
        with self._lock:
            replicas = list(self._replicas)
        return sum(replica.load() for replica in replicas)

    def health_states(self) -> dict[str, str]:
        """Every replica the fleet has ever run, by current health state."""
        with self._lock:
            replicas = self._replicas + self._graveyard + self._retired
            retired = set(id(replica) for replica in self._retired)
        return {
            replica.replica_id: (
                "retired"
                if id(replica) in retired and not replica.dead
                else replica.health.state
            )
            for replica in replicas
        }

    def drain_recent_queue_waits(self) -> list[float]:
        """Consume the queue-wait samples observed since the last call.

        The autoscaler's per-tick SLO window: unlike the lifetime
        histograms in :attr:`metrics`, these reflect only the traffic
        since the previous tick.
        """
        samples: list[float] = []
        while True:
            try:
                samples.append(self._recent_queue_waits.popleft())
            except IndexError:
                return samples

    # -- submission ----------------------------------------------------------

    def submit(
        self,
        request: ServeRequest | None = None,
        *,
        kind: str | None = None,
        texts: Sequence[str] | str | None = None,
        priority: str = "interactive",
    ) -> Future:
        """Admit one request; returns a Future resolving to a ServeResult.

        Same contract as :meth:`ServingEngine.submit` — raises
        :class:`InputError` on malformed input and
        :class:`OverloadedError` when no admissible replica can accept
        the request (every replica ejected/dead, or every queue at its
        bound). A request this method *accepts* is covered by the
        at-least-once failover guarantee: replica death after admission
        re-dispatches it instead of losing it.
        """
        if request is None:
            if kind is None or texts is None:
                raise InputError(
                    "submit() needs a ServeRequest or kind= and texts=",
                    stage="router",
                )
            if isinstance(texts, str):
                texts = (texts,)
            request = ServeRequest(
                kind=kind, texts=tuple(texts), priority=priority
            )
        with self._lock:
            generation = self._generation
        if request.kind == "detect" and generation.detector is None:
            raise InputError("fleet has no detector backend", stage="router")
        if request.kind == "extract" and generation.extractor is None:
            raise InputError("fleet has no extractor backend", stage="router")
        self.metrics.count("submitted")
        routed: Future = Future()
        self._dispatch(
            request,
            routed,
            submitted_at=self._clock(),
            redispatches=0,
            excluded=frozenset(),
            initial=True,
        )
        return routed

    def detect(self, texts, priority: str = "interactive") -> Future:
        return self.submit(kind="detect", texts=texts, priority=priority)

    def extract(self, texts, priority: str = "interactive") -> Future:
        return self.submit(kind="extract", texts=texts, priority=priority)

    # -- dispatch + failover -------------------------------------------------

    def _select(self, request: ServeRequest, excluded: frozenset):
        with self._lock:
            candidates = [
                replica
                for replica in self._replicas
                if replica.replica_id not in excluded
                and replica.health.admissible()
                and replica.engine.state in ("new", "running")
            ]
            if not candidates:
                return None
            if len(candidates) == 1:
                return candidates[0]
            return self.policy.select(
                candidates, _estimate_tokens(request.texts)
            )

    def _dispatch(
        self,
        request: ServeRequest,
        routed: Future,
        *,
        submitted_at: float,
        redispatches: int,
        excluded: frozenset,
        initial: bool,
    ) -> None:
        cost = _estimate_tokens(request.texts)
        while True:
            replica = self._select(request, excluded)
            if replica is None:
                error = OverloadedError(
                    "no admissible replica can accept this request",
                    stage="router",
                )
                self.metrics.count("rejected")
                if initial:
                    raise error
                routed.set_exception(error)
                return
            if self.fault_injector is not None:
                # Fleet chaos sites. ``replica_crash``: the replica the
                # policy just picked dies this instant — kill it and route
                # around. ``replica_stall``: it stops making progress —
                # health strike, exclude, route around.
                try:
                    self.fault_injector.check("replica_crash")
                except ReproError:
                    self.metrics.count("chaos.replica_crash")
                    self.kill_replica(replica.replica_id)
                    continue
                try:
                    self.fault_injector.check("replica_stall")
                except ReproError:
                    self.metrics.count("chaos.replica_stall")
                    replica.health.record_failure()
                    excluded = excluded | {replica.replica_id}
                    continue
            replica.begin(cost)
            try:
                inner = replica.engine.submit(request)
            except OverloadedError as error:
                replica.finish(cost)
                if replica.dead or replica.engine.state in (
                    "draining",
                    "stopped",
                ):
                    # Not a load signal — the replica is going away.
                    excluded = excluded | {replica.replica_id}
                    continue
                self.metrics.count("rejected")
                self.metrics.count(f"rejected.{request.priority}")
                if initial:
                    raise
                routed.set_exception(error)
                return
            self.metrics.count("dispatched")
            inner.add_done_callback(
                lambda inner_future, rep=replica: self._on_replica_done(
                    inner_future,
                    rep,
                    request,
                    routed,
                    submitted_at,
                    redispatches,
                    cost,
                )
            )
            return

    def _on_replica_done(
        self,
        inner: Future,
        replica: Replica,
        request: ServeRequest,
        routed: Future,
        submitted_at: float,
        redispatches: int,
        cost: int,
    ) -> None:
        replica.finish(cost)
        error = inner.exception()
        if error is None:
            replica.health.record_success()
            result = inner.result()
            self.metrics.count("completed")
            now = self._clock()
            self.metrics.observe("fleet.total", max(0.0, now - submitted_at))
            self.metrics.observe(
                "fleet.queue_wait", result.queue_wait_seconds
            )
            self._recent_queue_waits.append(result.queue_wait_seconds)
            routed.set_result(result)
            return
        # Replica death (crash error, or any failure surfaced by a dead /
        # retiring replica, e.g. OverloadedError from its abort-shutdown)
        # triggers failover; everything else is a request-level failure
        # that also strikes the replica's health.
        if replica.dead or isinstance(error, ReplicaCrashError):
            if redispatches < self.config.max_redispatch:
                self.metrics.count("failover.redispatched")
                self._dispatch(
                    request,
                    routed,
                    submitted_at=submitted_at,
                    redispatches=redispatches + 1,
                    excluded=frozenset({replica.replica_id}),
                    initial=False,
                )
                return
            self.metrics.count("failover.exhausted")
        else:
            replica.health.record_failure()
        self.metrics.count("failed")
        routed.set_exception(error)

    # -- replica death -------------------------------------------------------

    def kill_replica(self, replica_id: str) -> bool:
        """Simulate a replica crash (the chaos tier's kill switch).

        The replica's backends start raising
        :class:`ReplicaCrashError`, so its in-flight batches fail fast
        and fail over; its queue is aborted (those requests fail over
        too); it leaves the routing candidate set permanently. Returns
        False when the replica is unknown or already dead.
        """
        with self._lock:
            replica = next(
                (
                    r
                    for r in self._replicas
                    if r.replica_id == replica_id
                ),
                None,
            )
            if replica is None or replica.dead:
                return False
            replica.health.mark_dead()
            self._replicas.remove(replica)
            self._graveyard.append(replica)
        self.metrics.count("replicas_killed")
        replica.crash_backends()
        # Abort the dead engine off-thread: its queued entries fail with
        # OverloadedError, which the done-callbacks fail over because the
        # replica is marked dead. Joining its workers must not block the
        # (possibly dispatching) caller.
        threading.Thread(
            target=replica.engine.shutdown,
            kwargs={"drain": False},
            name=f"repro-fleet-reaper-{replica_id}",
            daemon=True,
        ).start()
        return True

    # -- scaling -------------------------------------------------------------

    def scale_to(self, target: int) -> int:
        """Grow or shrink the live replica set to ``target`` replicas.

        Scale-up replicas join the current generation immediately;
        scale-down retires the most recently added replicas by draining
        them off-thread (their accepted work completes — scaling never
        loses a request). Returns the new live count.
        """
        if target < 1:
            raise ValueError("a fleet needs at least one replica")
        with self._swap_lock:
            added: list[Replica] = []
            victims: list[Replica] = []
            with self._lock:
                if self._stopped:
                    raise RuntimeError("cannot scale a stopped fleet")
                while len(self._replicas) < target:
                    replica = self._build_replica(self._generation)
                    self._replicas.append(replica)
                    added.append(replica)
                if len(self._replicas) > target:
                    keep = len(self._replicas) - target
                    self._replicas.sort(key=lambda r: r.replica_id)
                    victims = self._replicas[-keep:]
                    del self._replicas[-keep:]
                    self._retired.extend(victims)
                live = len(self._replicas)
            for replica in added:
                self.metrics.count("scaled_up")
                if self._started:
                    replica.engine.start()
            for replica in victims:
                self.metrics.count("scaled_down")
                threading.Thread(
                    target=replica.engine.shutdown,
                    kwargs={
                        "drain": True,
                        "timeout": self.config.drain_timeout,
                    },
                    name=f"repro-fleet-drain-{replica.replica_id}",
                    daemon=True,
                ).start()
            return live

    # -- blue-green hot-swap -------------------------------------------------

    def swap_model(
        self,
        checkpoint_dir: str | Path | None = None,
        *,
        extractor=None,
        detector=None,
        probe_texts: Sequence[str] | None = None,
        drain_timeout: float | None = None,
    ) -> SwapReport:
        """Blue-green swap to a new model generation, under live traffic.

        Either pass ``checkpoint_dir`` (loaded through the
        manifest/SHA-256-verified extractor load path) or already-built
        ``extractor``/``detector`` backends. The old generation serves
        every request until the atomic cutover; a failed gate, a load
        error, or an injected ``swap_abort`` aborts with the old fleet
        untouched. Returns a :class:`SwapReport`; never raises for
        swap-level failures (``report.ok`` tells the caller), only for
        caller errors (no new model given, fleet not started).
        """
        if checkpoint_dir is None and extractor is None and detector is None:
            raise InputError(
                "swap_model() needs a checkpoint_dir or new backends",
                stage="swap",
            )
        with self._swap_lock:
            if self._stopped:
                raise RuntimeError("cannot swap a stopped fleet")
            if not self._started:
                raise RuntimeError(
                    "cannot swap a fleet never started (nothing would "
                    "drain the old generation)"
                )
            with self._lock:
                old_generation = self._generation
                replica_target = max(1, len(self._replicas))
            rejected_before = self.metrics.counters.snapshot().get(
                "rejected", 0.0
            )
            report = SwapReport(
                status=SWAP_ABORTED,
                from_generation=old_generation.index,
                to_generation=old_generation.index + 1,
                states=[],
                replicas=replica_target,
            )

            # -- loading: checksum-verified checkpoint load ------------------
            report.states.append("loading")
            new_extractor = extractor
            new_detector = detector
            if checkpoint_dir is not None:
                from repro.core.extractor import WeakSupervisionExtractor

                try:
                    new_extractor = WeakSupervisionExtractor.load(
                        checkpoint_dir
                    )
                except ReproError as error:
                    return self._abort_swap(report, "loading", error)
            new_generation = _Generation(
                index=old_generation.index + 1,
                detector=new_detector or old_generation.detector,
                extractor=new_extractor or old_generation.extractor,
                fallback=old_generation.fallback,
            )

            # -- gating: config hash + probe equivalence ---------------------
            report.states.append("gating")
            gate_error = self._check_swap_gates(
                report, old_generation, new_generation, probe_texts
            )
            if gate_error is not None:
                return self._abort_swap(report, "gating", gate_error)

            # -- starting: fully-started fresh replicas ----------------------
            report.states.append("starting")
            new_replicas = [
                self._build_replica(new_generation)
                for _ in range(replica_target)
            ]
            for replica in new_replicas:
                replica.engine.start()
            if self.fault_injector is not None:
                try:
                    self.fault_injector.check("swap_abort")
                except ReproError as error:
                    for replica in new_replicas:
                        replica.engine.shutdown(drain=False)
                    self.metrics.count("chaos.swap_abort")
                    return self._abort_swap(report, "starting", error)

            # -- cutover: atomic flip ----------------------------------------
            report.states.append("cutover")
            with self._lock:
                old_replicas = self._replicas
                self._replicas = new_replicas
                self._generation = new_generation
            self.metrics.count("swaps")

            # -- draining: lease-exact old-generation drain ------------------
            report.states.append("draining")
            timeout = (
                self.config.drain_timeout
                if drain_timeout is None
                else drain_timeout
            )
            report.drained_requests = self._drain_replicas(
                old_replicas, timeout
            )
            with self._lock:
                self._retired.extend(
                    r for r in old_replicas if not r.dead
                )

            report.states.append("retired")
            report.status = SWAP_COMPLETED
            report.rejections_during_swap = int(
                self.metrics.counters.snapshot().get("rejected", 0.0)
                - rejected_before
            )
            return report

    def _check_swap_gates(
        self,
        report: SwapReport,
        old: _Generation,
        new: _Generation,
        probe_texts: Sequence[str] | None,
    ) -> ReproError | None:
        """Config-hash and probe-equivalence gates; None means both passed."""
        old_config = getattr(old.extractor, "config", None)
        new_config = getattr(new.extractor, "config", None)
        if (
            new.extractor is not old.extractor
            and old_config is not None
            and new_config is not None
        ):
            from repro.runtime.checkpoint import config_fingerprint

            report.config_hash_checked = True
            old_hash = config_fingerprint(**dataclasses.asdict(old_config))
            new_hash = config_fingerprint(**dataclasses.asdict(new_config))
            if old_hash != new_hash:
                return InputError(
                    f"config hash mismatch: fleet serves {old_hash[:12]}, "
                    f"checkpoint was trained under {new_hash[:12]}",
                    stage="swap",
                )
        probes = tuple(
            probe_texts if probe_texts is not None else self.config.probe_texts
        )
        if not probes:
            report.gate = {"status": "skipped", "probes": 0}
            return None
        expected_fields = (
            tuple(old_config.fields)
            if old_config is not None and hasattr(old_config, "fields")
            else None
        )
        try:
            if new.extractor is not None and new.extractor is not old.extractor:
                records = new.extractor.extract_batch(list(probes))
                if len(records) != len(probes):
                    raise InputError(
                        f"probe gate: {len(probes)} probes produced "
                        f"{len(records)} records",
                        stage="swap",
                    )
                for record in records:
                    fields = tuple(record)
                    if expected_fields is not None and (
                        fields != expected_fields
                    ):
                        raise InputError(
                            f"probe gate: record fields {fields} != "
                            f"serving schema {expected_fields}",
                            stage="swap",
                        )
            if new.detector is not None and new.detector is not old.detector:
                scores = list(new.detector.predict_proba(list(probes)))
                if len(scores) != len(probes):
                    raise InputError(
                        "probe gate: detector score count mismatch",
                        stage="swap",
                    )
        except ReproError as error:
            report.gate = {
                "status": "failed",
                "probes": len(probes),
                "error": str(error),
            }
            return error
        except Exception as error:  # noqa: BLE001 — gate must not crash swap
            report.gate = {
                "status": "failed",
                "probes": len(probes),
                "error": f"{type(error).__name__}: {error}",
            }
            return InputError(
                f"probe gate raised {type(error).__name__}: {error}",
                stage="swap",
            )
        report.gate = {"status": "passed", "probes": len(probes)}
        return None

    def _abort_swap(
        self, report: SwapReport, state: str, error: ReproError
    ) -> SwapReport:
        self.metrics.count("swaps_aborted")
        report.status = SWAP_ABORTED
        report.reason = f"[{state}] {type(error).__name__}: {error}"
        return report

    def _drain_replicas(
        self, replicas: list[Replica], timeout: float
    ) -> int:
        """Wait for router leases to return, then drain + stop each engine."""
        drained = sum(replica.inflight for replica in replicas)
        deadline = self._clock() + timeout
        with self._idle_cond:
            while any(replica._inflight > 0 for replica in replicas):
                remaining = deadline - self._clock()
                if remaining <= 0:
                    break
                self._idle_cond.wait(min(remaining, 0.05))
        for replica in replicas:
            if replica.dead:
                continue
            replica.engine.shutdown(
                drain=True, timeout=max(0.0, deadline - self._clock())
            )
        return drained

    # -- observability -------------------------------------------------------

    def metrics_snapshot(self) -> dict:
        """Router, per-replica, and fleet-aggregate views in one snapshot.

        ``fleet.cache`` merges every replica's submit-time cache counters
        *and* raw :class:`~repro.runtime.rescache.ResultCache` stats, so
        hit-rate is observable fleet-wide (per-engine rates undercount:
        a request that hits on one replica misses on its siblings).
        """
        router = self.metrics.snapshot()
        with self._lock:
            live = list(self._replicas)
            generation = self._generation.index
        per_replica: dict[str, dict] = {}
        counter_snaps: list[dict] = []
        cache_stats: list[dict] = []
        for replica in live:
            snapshot = replica.engine.metrics_snapshot()
            counter_snaps.append(snapshot["counters"])
            if replica.engine.result_cache is not None:
                cache_stats.append(
                    replica.engine.result_cache.stats.snapshot()
                )
            per_replica[replica.replica_id] = {
                "generation": replica.generation,
                "health": replica.health.state,
                "engine_state": replica.engine.state,
                "load": replica.load(),
                "outstanding_tokens": replica.outstanding_tokens(),
                "counters": snapshot["counters"],
                "cache": snapshot["cache"],
                "latency": snapshot["latency"],
            }
        return {
            "router": {
                "generation": generation,
                "policy": self.policy.name,
                "replicas": len(live),
                "counters": router["counters"],
                "latency": router["latency"],
                "throughput": router["throughput"],
                "health": self.health_states(),
            },
            "replicas": per_replica,
            "fleet": {
                "pending": sum(replica.load() for replica in live),
                "counters": merge_counters(counter_snaps),
                "cache": fleet_cache_view(counter_snaps, cache_stats),
            },
        }
