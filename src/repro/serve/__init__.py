"""Online serving subsystem: micro-batching, admission control, SLO metrics.

The batch runtime (:mod:`repro.runtime`) answers "how fast can we chew
through a corpus"; this package answers "how many concurrent users can we
serve under a latency budget". It layers a request-level
:class:`ServingEngine` on the same scheduler and resilience machinery:

* ``submit(request) -> Future`` with typed load shedding
  (:class:`~repro.runtime.errors.OverloadedError`) and two priority
  classes (``interactive`` ahead of ``bulk``);
* a dynamic micro-batcher that coalesces concurrently pending requests
  (flush on ``max_batch_tokens`` or ``max_wait_ms``) — results stay
  bitwise-identical to sequential single calls thanks to the PR 1
  width-invariance guarantee;
* per-stage retries/circuit breakers via
  :func:`repro.runtime.resilience.run_stage`, with a fallback-extractor
  degradation ladder and a bounded request quarantine;
* SLO metrics: p50/p95/p99 latency histograms, queue-wait vs. compute
  split, throughput and rejection counts via ``metrics_snapshot()``.

Above the single engine sits the fleet tier (:mod:`repro.serve.fleet`):
a :class:`FleetRouter` replicating the engine N ways behind pluggable
routing policies, with per-replica health ejection, at-least-once
failover when a replica dies mid-flight, blue-green model hot-swap
(:meth:`FleetRouter.swap_model`), and an SLO-driven
:class:`FleetAutoscaler` / offline :class:`FleetSimulator`.

See DESIGN.md section "Online serving" and the README "Serving" and
"Fleet serving" sections.
"""

from repro.serve.admission import PRIORITIES, AdmissionController
from repro.serve.autoscale import (
    AutoscalePolicy,
    FleetAutoscaler,
    FleetSimulator,
)
from repro.serve.engine import (
    KIND_DETECT,
    KIND_EXTRACT,
    STATUS_DEGRADED,
    STATUS_OK,
    ServeRequest,
    ServeResult,
    ServingConfig,
    ServingEngine,
)
from repro.serve.fleet import (
    FleetConfig,
    FleetRouter,
    Replica,
    SwapReport,
)
from repro.serve.loadgen import (
    LoadLevel,
    build_demo_backend,
    build_request_texts,
    build_swappable_extractor,
    run_load_level,
    run_serving_bench,
)
from repro.serve.metrics import (
    LatencyHistogram,
    SloMetrics,
    fleet_cache_view,
    merge_counters,
)
from repro.serve.router import (
    ROUTING_POLICIES,
    LeastLoadedPolicy,
    ReplicaHealth,
    RoundRobinPolicy,
    RoutingPolicy,
    TokenCostAwarePolicy,
    make_policy,
)

# Bulk (offline) lane of a serving deployment: the data-parallel corpus
# runtime, re-exported so serving callers can drain backlogs on every core
# with the same bitwise-reproducibility contract as the online lane.
from repro.runtime.parallel import (
    extract_batch_parallel,
    process_reports_parallel,
    resolve_workers,
)

__all__ = [
    "AdmissionController",
    "AutoscalePolicy",
    "FleetAutoscaler",
    "FleetConfig",
    "FleetRouter",
    "FleetSimulator",
    "KIND_DETECT",
    "KIND_EXTRACT",
    "LatencyHistogram",
    "LeastLoadedPolicy",
    "LoadLevel",
    "PRIORITIES",
    "ROUTING_POLICIES",
    "Replica",
    "ReplicaHealth",
    "RoundRobinPolicy",
    "RoutingPolicy",
    "STATUS_DEGRADED",
    "STATUS_OK",
    "ServeRequest",
    "ServeResult",
    "ServingConfig",
    "ServingEngine",
    "SloMetrics",
    "SwapReport",
    "TokenCostAwarePolicy",
    "build_demo_backend",
    "build_request_texts",
    "build_swappable_extractor",
    "extract_batch_parallel",
    "fleet_cache_view",
    "make_policy",
    "merge_counters",
    "process_reports_parallel",
    "resolve_workers",
    "run_load_level",
    "run_serving_bench",
]
