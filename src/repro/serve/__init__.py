"""Online serving subsystem: micro-batching, admission control, SLO metrics.

The batch runtime (:mod:`repro.runtime`) answers "how fast can we chew
through a corpus"; this package answers "how many concurrent users can we
serve under a latency budget". It layers a request-level
:class:`ServingEngine` on the same scheduler and resilience machinery:

* ``submit(request) -> Future`` with typed load shedding
  (:class:`~repro.runtime.errors.OverloadedError`) and two priority
  classes (``interactive`` ahead of ``bulk``);
* a dynamic micro-batcher that coalesces concurrently pending requests
  (flush on ``max_batch_tokens`` or ``max_wait_ms``) — results stay
  bitwise-identical to sequential single calls thanks to the PR 1
  width-invariance guarantee;
* per-stage retries/circuit breakers via
  :func:`repro.runtime.resilience.run_stage`, with a fallback-extractor
  degradation ladder and a bounded request quarantine;
* SLO metrics: p50/p95/p99 latency histograms, queue-wait vs. compute
  split, throughput and rejection counts via ``metrics_snapshot()``.

See DESIGN.md section "Online serving" and the README "Serving" section.
"""

from repro.serve.admission import PRIORITIES, AdmissionController
from repro.serve.engine import (
    KIND_DETECT,
    KIND_EXTRACT,
    STATUS_DEGRADED,
    STATUS_OK,
    ServeRequest,
    ServeResult,
    ServingConfig,
    ServingEngine,
)
from repro.serve.loadgen import (
    LoadLevel,
    build_demo_backend,
    build_request_texts,
    run_load_level,
    run_serving_bench,
)
from repro.serve.metrics import LatencyHistogram, SloMetrics

# Bulk (offline) lane of a serving deployment: the data-parallel corpus
# runtime, re-exported so serving callers can drain backlogs on every core
# with the same bitwise-reproducibility contract as the online lane.
from repro.runtime.parallel import (
    extract_batch_parallel,
    process_reports_parallel,
    resolve_workers,
)

__all__ = [
    "AdmissionController",
    "KIND_DETECT",
    "KIND_EXTRACT",
    "LatencyHistogram",
    "LoadLevel",
    "PRIORITIES",
    "STATUS_DEGRADED",
    "STATUS_OK",
    "ServeRequest",
    "ServeResult",
    "ServingConfig",
    "ServingEngine",
    "SloMetrics",
    "build_demo_backend",
    "build_request_texts",
    "extract_batch_parallel",
    "process_reports_parallel",
    "resolve_workers",
    "run_load_level",
    "run_serving_bench",
]
