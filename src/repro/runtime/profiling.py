"""Lightweight perf counters for the inference runtime.

Table 4's "minutes" column and the deployment story (Tables 5-7) are
throughput claims; this module gives every prediction path trustworthy
numbers to back them: wall-clock timers, token counters, padding-waste and
cache-hit ratios. Everything is plain floats/ints and serializes to JSON
(``benchmarks/bench_inference_throughput.py`` asserts the schema).
"""

from __future__ import annotations

import contextlib
import dataclasses
import threading
import time
from collections.abc import Iterator


class PerfCounters:
    """Accumulating named counters plus wall-clock timers.

    Thread-safe: ``add``/``merge``/``snapshot`` take an internal lock, so
    per-worker counters in the serving engine can aggregate into a shared
    instance without losing increments.
    """

    def __init__(self) -> None:
        self._values: dict[str, float] = {}
        self._lock = threading.Lock()

    def __getstate__(self) -> dict:
        # Locks don't pickle; counters cross process boundaries as a
        # point-in-time snapshot (the parallel runtime merges them back
        # with ``merge``).
        return {"_values": self.snapshot()}

    def __setstate__(self, state: dict) -> None:
        self._values = dict(state["_values"])
        self._lock = threading.Lock()

    def add(self, name: str, amount: float = 1.0) -> None:
        with self._lock:
            self._values[name] = self._values.get(name, 0.0) + amount

    def get(self, name: str, default: float = 0.0) -> float:
        with self._lock:
            return self._values.get(name, default)

    @contextlib.contextmanager
    def timer(self, name: str) -> Iterator[None]:
        """Accumulate the elapsed seconds of the ``with`` body into ``name``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.add(name, time.perf_counter() - start)

    def merge(self, other: "PerfCounters") -> None:
        """Fold another counter set into this one (sum per name)."""
        for name, value in other.snapshot().items():
            self.add(name, value)

    def snapshot(self) -> dict[str, float]:
        """A consistent point-in-time copy of all counters."""
        with self._lock:
            return dict(self._values)

    def as_dict(self) -> dict[str, float]:
        return self.snapshot()


@dataclasses.dataclass
class RunStats:
    """Observability record of one batched inference run.

    Exposed as ``WeakSupervisionExtractor.last_run_stats`` (and mirrored by
    the detector and the GoalSpotter pipeline) after every production call.
    """

    wall_seconds: float = 0.0
    sequences: int = 0
    microbatches: int = 0
    total_tokens: int = 0
    padded_tokens: int = 0
    bpe_cache_hits: int = 0
    bpe_cache_misses: int = 0
    # Content-addressed result cache (repro.runtime.rescache): sequence
    # lookups, deterministic evictions, whole calls served without a
    # forward pass (bypasses), and effective tokens served from cache.
    result_cache_hits: int = 0
    result_cache_misses: int = 0
    result_cache_evictions: int = 0
    result_cache_bypasses: int = 0
    result_cache_tokens: int = 0
    # Robustness counters (filled by the fault-tolerant runtime paths).
    retries: int = 0
    failures: int = 0
    degraded: int = 0
    quarantined: int = 0
    timings: dict[str, float] = dataclasses.field(default_factory=dict)
    extra: dict[str, float] = dataclasses.field(default_factory=dict)

    @property
    def tokens_per_second(self) -> float:
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.total_tokens / self.wall_seconds

    @property
    def padding_waste(self) -> float:
        """Fraction of the encoder's padded footprint spent on padding."""
        if self.padded_tokens == 0:
            return 0.0
        return 1.0 - self.total_tokens / self.padded_tokens

    @property
    def bpe_cache_hit_rate(self) -> float:
        lookups = self.bpe_cache_hits + self.bpe_cache_misses
        if lookups == 0:
            return 0.0
        return self.bpe_cache_hits / lookups

    @property
    def result_cache_hit_rate(self) -> float:
        lookups = self.result_cache_hits + self.result_cache_misses
        if lookups == 0:
            return 0.0
        return self.result_cache_hits / lookups

    def as_dict(self) -> dict:
        """JSON-ready flat view, derived ratios included."""
        return {
            "wall_seconds": self.wall_seconds,
            "sequences": self.sequences,
            "microbatches": self.microbatches,
            "total_tokens": self.total_tokens,
            "padded_tokens": self.padded_tokens,
            "tokens_per_second": self.tokens_per_second,
            "padding_waste": self.padding_waste,
            "bpe_cache_hits": self.bpe_cache_hits,
            "bpe_cache_misses": self.bpe_cache_misses,
            "bpe_cache_hit_rate": self.bpe_cache_hit_rate,
            "result_cache_hits": self.result_cache_hits,
            "result_cache_misses": self.result_cache_misses,
            "result_cache_evictions": self.result_cache_evictions,
            "result_cache_bypasses": self.result_cache_bypasses,
            "result_cache_tokens": self.result_cache_tokens,
            "result_cache_hit_rate": self.result_cache_hit_rate,
            "retries": self.retries,
            "failures": self.failures,
            "degraded": self.degraded,
            "quarantined": self.quarantined,
            "timings": dict(self.timings),
            "extra": dict(self.extra),
        }

    def merge(self, other: "RunStats") -> "RunStats":
        """A new RunStats summing this one and ``other``.

        Ratios (tokens/sec, hit rates) re-derive from the summed fields,
        so per-worker stats aggregate into fleet-wide numbers exactly.
        """
        timings = dict(self.timings)
        for name, value in other.timings.items():
            timings[name] = timings.get(name, 0.0) + value
        extra = dict(self.extra)
        for name, value in other.extra.items():
            extra[name] = extra.get(name, 0.0) + value
        return RunStats(
            wall_seconds=self.wall_seconds + other.wall_seconds,
            sequences=self.sequences + other.sequences,
            microbatches=self.microbatches + other.microbatches,
            total_tokens=self.total_tokens + other.total_tokens,
            padded_tokens=self.padded_tokens + other.padded_tokens,
            bpe_cache_hits=self.bpe_cache_hits + other.bpe_cache_hits,
            bpe_cache_misses=self.bpe_cache_misses + other.bpe_cache_misses,
            result_cache_hits=self.result_cache_hits
            + other.result_cache_hits,
            result_cache_misses=self.result_cache_misses
            + other.result_cache_misses,
            result_cache_evictions=self.result_cache_evictions
            + other.result_cache_evictions,
            result_cache_bypasses=self.result_cache_bypasses
            + other.result_cache_bypasses,
            result_cache_tokens=self.result_cache_tokens
            + other.result_cache_tokens,
            retries=self.retries + other.retries,
            failures=self.failures + other.failures,
            degraded=self.degraded + other.degraded,
            quarantined=self.quarantined + other.quarantined,
            timings=timings,
            extra=extra,
        )

    @classmethod
    def from_counters(
        cls,
        counters: PerfCounters,
        wall_seconds: float,
        bpe_cache_hits: int = 0,
        bpe_cache_misses: int = 0,
        extra: dict[str, float] | None = None,
    ) -> "RunStats":
        """Assemble stats from the counters the prediction paths fill in."""
        values = counters.as_dict()
        timings = {
            name: value
            for name, value in values.items()
            if name.endswith("_seconds")
        }
        return cls(
            wall_seconds=wall_seconds,
            sequences=int(values.get("sequences", 0)),
            microbatches=int(values.get("microbatches", 0)),
            total_tokens=int(values.get("total_tokens", 0)),
            padded_tokens=int(values.get("padded_tokens", 0)),
            bpe_cache_hits=bpe_cache_hits,
            bpe_cache_misses=bpe_cache_misses,
            result_cache_hits=int(values.get("result_cache_hits", 0)),
            result_cache_misses=int(values.get("result_cache_misses", 0)),
            result_cache_evictions=int(
                values.get("result_cache_evictions", 0)
            ),
            result_cache_bypasses=int(
                values.get("result_cache_bypasses", 0)
            ),
            result_cache_tokens=int(values.get("result_cache_tokens", 0)),
            retries=int(values.get("retries", 0)),
            failures=int(values.get("stage_failures", 0)),
            degraded=int(values.get("degraded", 0)),
            quarantined=int(values.get("quarantined", 0)),
            timings=timings,
            extra=extra or {},
        )
