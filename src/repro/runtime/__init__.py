"""Batched inference runtime: scheduling, inference mode, observability.

The production workload (detect -> extract -> store over tens of thousands
of report pages, Tables 5-7) is batch inference. This package makes that
path fast and measurable:

* :mod:`repro.runtime.scheduler` — length-bucketed batch planning under a
  token budget, used by every prediction path;
* :mod:`repro.runtime.profiling` — perf counters, timers, tokens/sec,
  padding-waste and cache-hit-rate reporting;
* :func:`repro.nn.module.inference_mode` (re-exported here) — disables
  backward-cache construction during prediction.
"""

from repro.nn.module import inference_mode, is_inference
from repro.runtime.profiling import PerfCounters, RunStats
from repro.runtime.scheduler import BatchPlan, Microbatch, plan_batches

__all__ = [
    "BatchPlan",
    "Microbatch",
    "PerfCounters",
    "RunStats",
    "inference_mode",
    "is_inference",
    "plan_batches",
]
