"""Batched inference runtime: scheduling, resilience, observability.

The production workload (detect -> extract -> store over tens of thousands
of report pages, Tables 5-7) is batch inference. This package makes that
path fast, fault-tolerant, and measurable:

* :mod:`repro.runtime.scheduler` — length-bucketed batch planning under a
  token budget, used by every prediction path;
* :mod:`repro.runtime.errors` — the structured failure taxonomy
  (``ReproError`` -> ``InputError``/``ModelError``/``NumericalError``/
  ``StageTimeout``);
* :mod:`repro.runtime.resilience` — retry policies with seeded backoff,
  per-stage circuit breakers and deadlines, quarantine, input validation,
  and a deterministic fault injector for the chaos suite;
* :mod:`repro.runtime.profiling` — perf counters, timers, tokens/sec,
  padding-waste, cache-hit-rate, and failure/retry/degradation reporting;
* :mod:`repro.runtime.parallel` — data-parallel sharded corpus execution
  across worker processes (one-shot model broadcast, balanced contiguous
  shards, merged stats/quarantine; bitwise-identical to sequential);
* :mod:`repro.runtime.checkpoint` — durable training: atomic, checksummed,
  bitwise-resumable checkpoints with manifests, a last-good pointer, and
  corruption rollback (typed ``ArtifactError`` on every load surface);
* :mod:`repro.runtime.rescache` — content-addressed cross-request result
  cache (keys pin token ids + weight fingerprint + numeric variant;
  bounded, seeded-deterministic eviction; hits are bitwise-identical to
  recomputation thanks to packing invariance);
* :mod:`repro.runtime.journal` — crash-safe run journal for corpus
  inference: manifest-bound, checksummed JSONL WAL with fsync'd atomic
  segment commits and exactly-once resume (resumed output is
  bitwise-identical to an uninterrupted run);
* :mod:`repro.runtime.supervisor` — lease-based worker supervision over
  journaled runs: hung-worker reaping with re-grant, a global run
  deadline, and SIGINT/SIGTERM graceful drain; plus the durable run
  drivers (``run_durable_rows``, ``run_durable_reports``);
* :func:`repro.nn.module.inference_mode` / :func:`repro.nn.module.numeric_guard`
  (re-exported here) — backward-cache-free prediction and opt-in NaN/inf
  guards.
"""

from repro.nn.module import (
    inference_mode,
    is_inference,
    numeric_guard,
    numeric_guard_active,
)
from repro.runtime.checkpoint import (
    CheckpointManager,
    TrainState,
    config_fingerprint,
    verify_manifest,
    write_manifest,
)
from repro.runtime.errors import (
    ArtifactError,
    CircuitOpenError,
    InputError,
    ModelError,
    NumericalError,
    OverloadedError,
    QuantizationError,
    ReplicaCrashError,
    ReproError,
    RunInterrupted,
    StageTimeout,
    TaskRegistryError,
    classify_error,
    error_from_context,
)
from repro.runtime.journal import (
    JournalSegment,
    RunJournal,
    input_digest,
    rows_digest,
)
from repro.runtime.parallel import (
    PipelineBroadcast,
    Shard,
    ShardResult,
    ShardTask,
    WorkerPool,
    broadcast_classifier,
    broadcast_extractor,
    broadcast_pipeline,
    classify_batch_parallel,
    estimate_report_cost,
    estimate_text_cost,
    extract_batch_parallel,
    map_shards,
    plan_shards,
    process_reports_parallel,
    resolve_workers,
    restore_pipeline,
    run_shard,
    shard_seed,
)
from repro.runtime.profiling import PerfCounters, RunStats
from repro.runtime.rescache import CacheStats, ResultCache, result_key
from repro.runtime.resilience import (
    CircuitBreaker,
    FaultInjector,
    FaultSpec,
    QuarantineEntry,
    QuarantineQueue,
    RetryPolicy,
    run_stage,
    sanitize_report,
    validate_report,
)
from repro.runtime.scheduler import BatchPlan, Microbatch, plan_batches
from repro.runtime.supervisor import (
    DurableRunResult,
    GracefulShutdown,
    Lease,
    PoolTransport,
    RunSupervisor,
    SegmentOutcome,
    SegmentWork,
    SupervisorConfig,
    plan_segments,
    run_durable_reports,
    run_durable_rows,
)

__all__ = [
    "ArtifactError",
    "BatchPlan",
    "CacheStats",
    "CheckpointManager",
    "CircuitBreaker",
    "CircuitOpenError",
    "DurableRunResult",
    "FaultInjector",
    "FaultSpec",
    "GracefulShutdown",
    "InputError",
    "JournalSegment",
    "Lease",
    "Microbatch",
    "ModelError",
    "NumericalError",
    "OverloadedError",
    "PerfCounters",
    "PipelineBroadcast",
    "PoolTransport",
    "QuantizationError",
    "QuarantineEntry",
    "QuarantineQueue",
    "ReplicaCrashError",
    "ReproError",
    "ResultCache",
    "RetryPolicy",
    "RunInterrupted",
    "RunJournal",
    "RunStats",
    "RunSupervisor",
    "SegmentOutcome",
    "SegmentWork",
    "Shard",
    "ShardResult",
    "ShardTask",
    "StageTimeout",
    "SupervisorConfig",
    "TaskRegistryError",
    "TrainState",
    "WorkerPool",
    "broadcast_classifier",
    "broadcast_extractor",
    "broadcast_pipeline",
    "classify_batch_parallel",
    "classify_error",
    "config_fingerprint",
    "error_from_context",
    "estimate_report_cost",
    "estimate_text_cost",
    "extract_batch_parallel",
    "inference_mode",
    "input_digest",
    "is_inference",
    "map_shards",
    "numeric_guard",
    "numeric_guard_active",
    "plan_batches",
    "plan_segments",
    "plan_shards",
    "process_reports_parallel",
    "resolve_workers",
    "restore_pipeline",
    "result_key",
    "rows_digest",
    "run_durable_reports",
    "run_durable_rows",
    "run_shard",
    "run_stage",
    "sanitize_report",
    "shard_seed",
    "validate_report",
    "verify_manifest",
    "write_manifest",
]
