"""Data-parallel sharded corpus runtime (multiprocessing).

The batch runtime (PR 1) made single-process corpus inference fast; this
module makes it use every core. A corpus of reports is split into
contiguous *shards* balanced by estimated token count (the same
whitespace-word length proxy the scheduler and serving engine budget by),
the fitted pipeline is broadcast to worker processes exactly **once** at
spawn — model weights travel as compact ``.npz`` payloads via
:mod:`repro.nn.serialize`, never re-pickled per document — and each worker
runs the existing resilient pipeline over its shard (``on_error``
semantics, per-shard :class:`~repro.runtime.resilience.FaultInjector` with
deterministic per-shard seeds, quarantine shipped back and merged).

**Correctness contract**: ``workers=N`` is bitwise-identical to
``workers=1``. Three properties underwrite this:

* shards are contiguous index ranges, so concatenating shard results in
  shard order restores exact input order (records *and* quarantine);
* a sequence's logits are bitwise-invariant to microbatch packing (the
  PR 1/PR 3 width-invariance guarantees), so per-shard batched detection
  and extraction produce the same scores as one corpus-wide batch;
* caches (BPE, normalize, and the content-addressed result cache of
  :mod:`repro.runtime.rescache`) are value-transparent and every worker's
  RNG state derives deterministically from the broadcast — a pickled
  :class:`~repro.runtime.rescache.ResultCache` arrives *empty* with fresh
  stats, and the single-worker path restores from the same broadcast, so
  ``workers=1`` and ``workers=N`` stay bitwise-identical with caching on.

Per-shard ``RunStats``/``PerfCounters`` merge back through the PR 3
merge-safe APIs (:meth:`RunStats.merge`), so fleet-wide counters equal the
sum of per-shard counters exactly.

Entry points: :func:`process_reports_parallel` (the GoalSpotter corpus
path — also reachable as ``GoalSpotter(..., workers=N)`` or
``process_reports(..., workers=N)``) and :func:`extract_batch_parallel`
(the bulk extractor path, wired to ``repro extract --workers``).
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import os
import pickle
import time
from collections.abc import Mapping, Sequence
from typing import TYPE_CHECKING, Any

from repro.nn.module import Module
from repro.nn.serialize import state_from_bytes, state_to_bytes
from repro.runtime.profiling import PerfCounters, RunStats
from repro.runtime.resilience import (
    FaultInjector,
    FaultSpec,
    QuarantineEntry,
    QuarantineQueue,
)

if TYPE_CHECKING:  # avoid an import cycle through repro.runtime.__init__
    from repro.core.extractor import WeakSupervisionExtractor
    from repro.datasets.reports import SustainabilityReport
    from repro.goalspotter.pipeline import ExtractedRecord, GoalSpotter

__all__ = [
    "PipelineBroadcast",
    "Shard",
    "ShardResult",
    "ShardTask",
    "WorkerPool",
    "broadcast_classifier",
    "broadcast_extractor",
    "broadcast_pipeline",
    "classify_batch_parallel",
    "estimate_report_cost",
    "estimate_text_cost",
    "extract_batch_parallel",
    "map_shards",
    "plan_shards",
    "process_reports_parallel",
    "resolve_workers",
    "restore_pipeline",
    "run_shard",
    "shard_seed",
]


# -- worker-count resolution --------------------------------------------------


def resolve_workers(workers: int | str | None) -> int:
    """Resolve a worker-count knob to a concrete positive integer.

    ``None``, ``0`` and ``"auto"`` mean "one worker per CPU core"; any
    other value must be a positive integer.
    """
    if workers in (None, 0, "auto"):
        return max(1, os.cpu_count() or 1)
    count = int(workers)
    if count < 1:
        raise ValueError(f"workers must be >= 1, got {workers!r}")
    return count


# -- shard planning -----------------------------------------------------------


def estimate_text_cost(text: str) -> int:
    """Cheap token-cost estimate for one text (words, min 1).

    The same length proxy the serving engine budgets micro-batches by;
    exact BPE lengths would cost a tokenizer pass per block, which is the
    work we are trying to parallelize.
    """
    return max(1, len(text.split()))


def estimate_report_cost(report: "SustainabilityReport") -> int:
    """Estimated token count of one report (the shard-balancing weight)."""
    return max(
        1,
        sum(
            estimate_text_cost(block.text)
            for page in report.pages
            for block in page.blocks
            if isinstance(getattr(block, "text", None), str)
        ),
    )


@dataclasses.dataclass(frozen=True)
class Shard:
    """One contiguous slice ``[start, stop)`` of the input corpus."""

    index: int
    start: int
    stop: int
    cost: int  # summed estimated token count of the slice

    @property
    def size(self) -> int:
        return self.stop - self.start


def _shards_needed(costs: Sequence[int], capacity: int) -> int:
    """How many contiguous shards a greedy split needs under ``capacity``."""
    shards, load = 1, 0
    for cost in costs:
        if load and load + cost > capacity:
            shards += 1
            load = 0
        load += cost
    return shards


def plan_shards(costs: Sequence[int], num_shards: int) -> list[Shard]:
    """Partition ``costs`` into at most ``num_shards`` contiguous shards.

    Minimizes the maximum shard cost (binary search over the capacity, then
    one greedy split), which is the makespan under perfectly parallel
    workers. Contiguity is what makes order restoration exact: shard
    results concatenated in shard order *are* input order.

    Returns non-empty shards only; with fewer items than shards, every
    item gets its own shard.
    """
    if num_shards < 1:
        raise ValueError("num_shards must be >= 1")
    if not costs:
        return []
    if any(cost < 0 for cost in costs):
        raise ValueError("costs must be non-negative")
    low, high = max(costs), sum(costs)
    while low < high:
        middle = (low + high) // 2
        if _shards_needed(costs, middle) <= num_shards:
            high = middle
        else:
            low = middle + 1
    capacity = low
    shards: list[Shard] = []
    start, load = 0, 0
    for position, cost in enumerate(costs):
        if position > start and load + cost > capacity:
            shards.append(Shard(len(shards), start, position, load))
            start, load = position, 0
        load += cost
    shards.append(Shard(len(shards), start, len(costs), load))
    return shards


def shard_seed(seed: int, shard_index: int) -> int:
    """Deterministic per-shard fault-injector seed."""
    return (seed * 1_000_003 + 7_919 * (shard_index + 1)) & 0x7FFFFFFF


# -- model broadcast ----------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class _ModelState:
    """One fitted model detached from the broadcast skeleton."""

    component: str  # attribute name on the host object ("" = the object)
    encoder_config: Any  # the fitted model's actual EncoderConfig
    payload: bytes  # npz bytes from repro.nn.serialize.state_to_bytes


@dataclasses.dataclass(frozen=True)
class PipelineBroadcast:
    """Everything a worker needs, shipped once at spawn.

    ``skeleton`` is the host object pickled with its fitted models
    detached (configs, tokenizers, policies — small); ``states`` carries
    each model's parameters as one compact npz payload produced by
    :func:`repro.nn.serialize.state_to_bytes`.
    """

    skeleton: bytes
    states: tuple[_ModelState, ...]

    @property
    def num_bytes(self) -> int:
        return len(self.skeleton) + sum(
            len(state.payload) for state in self.states
        )


def _component(host: Any, path: str) -> Any:
    return host if path == "" else getattr(host, path, None)


def _broadcast(host: Any, components: Sequence[str]) -> PipelineBroadcast:
    """Detach fitted models, pickle the skeleton, restore the host."""
    states: list[_ModelState] = []
    detached: list[tuple[Any, Module]] = []
    try:
        for name in components:
            owner = _component(host, name)
            model = getattr(owner, "model", None)
            if owner is None or not isinstance(model, Module):
                continue
            states.append(
                _ModelState(
                    component=name,
                    encoder_config=getattr(model, "config", None),
                    payload=state_to_bytes(model),
                )
            )
            detached.append((owner, model))
            owner.model = None
        skeleton = pickle.dumps(host, protocol=pickle.HIGHEST_PROTOCOL)
    finally:
        for owner, model in detached:
            owner.model = model
    return PipelineBroadcast(skeleton=skeleton, states=tuple(states))


_PIPELINE_COMPONENTS = ("detector", "extractor", "fallback_extractor")


def broadcast_pipeline(pipeline: "GoalSpotter") -> PipelineBroadcast:
    """Package a fitted :class:`GoalSpotter` for worker processes.

    Run-scoped state (quarantine, breakers, stats) is excluded so every
    worker starts clean; the caller's pipeline is left untouched.
    """
    saved = (
        pipeline.quarantine,
        pipeline._breakers,
        pipeline.last_run_stats,
    )
    pipeline.quarantine = QuarantineQueue()
    pipeline._breakers = {}
    pipeline.last_run_stats = None
    try:
        return _broadcast(pipeline, _PIPELINE_COMPONENTS)
    finally:
        (
            pipeline.quarantine,
            pipeline._breakers,
            pipeline.last_run_stats,
        ) = saved


def broadcast_extractor(
    extractor: "WeakSupervisionExtractor",
) -> PipelineBroadcast:
    """Package a fitted extractor for the bulk-extraction worker pool."""
    return _broadcast(extractor, ("",))


def broadcast_classifier(classifier: Any) -> PipelineBroadcast:
    """Package a fitted text classifier for the worker pool.

    Works for any host exposing ``.model`` (a :class:`Module`) and
    ``build_model(encoder_config)`` — the same contract the extractor
    broadcast relies on; :class:`repro.models.text_classifier.
    TextLabelClassifier` satisfies it.
    """
    return _broadcast(classifier, ("",))


def restore_pipeline(broadcast: PipelineBroadcast) -> Any:
    """Rebuild the broadcast host: unpickle the skeleton, reload weights.

    Each detached model is rebuilt from its owner's ``build_model`` (with
    the fitted model's actual encoder config, so pretrained or distilled
    geometries restore exactly) and its parameters loaded via
    :func:`repro.nn.serialize.state_from_bytes`.
    """
    host = pickle.loads(broadcast.skeleton)
    for state in broadcast.states:
        owner = _component(host, state.component)
        owner.model = owner.build_model(state.encoder_config)
        state_from_bytes(owner.model, state.payload)
    return host


# -- shard execution ----------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class ShardTask:
    """One unit of worker work: a contiguous slice of the corpus."""

    index: int
    start: int
    reports: tuple  # tuple[SustainabilityReport, ...]
    mode: str  # on_error policy for this run
    specs: tuple[FaultSpec, ...]  # fault specs active in this shard
    seed: int  # per-shard injector seed


@dataclasses.dataclass
class ShardResult:
    """What one shard sends back to the coordinator."""

    index: int
    start: int
    records: list  # list[ExtractedRecord], shard-local input order
    quarantine: list  # list[QuarantineEntry], shard-local order
    stats: dict | None  # the shard pipeline's last_run_stats
    extractor_stats: RunStats | None
    detector_stats: RunStats | None
    error: Exception | None = None  # first failure under mode="raise"


_WORKER_PIPELINE: Any = None
_WORKER_EXTRACTOR: Any = None


def _init_worker(payload: bytes) -> None:
    """Pool initializer: restore the broadcast pipeline exactly once."""
    global _WORKER_PIPELINE
    _WORKER_PIPELINE = restore_pipeline(pickle.loads(payload))


def run_shard(task: ShardTask, pipeline: Any = None) -> ShardResult:
    """Run one shard through a pipeline (the worker's broadcast copy).

    The pipeline's run-scoped state is reset first — fresh quarantine,
    fresh per-shard fault injector (``task.specs`` under ``task.seed``),
    zeroed stage stats — so a shard's outcome depends only on its inputs
    and the broadcast, never on pool scheduling.
    """
    from repro.runtime.errors import ReproError

    if pipeline is None:
        pipeline = _WORKER_PIPELINE
    if pipeline is None:
        raise RuntimeError("shard worker was not initialized")
    pipeline.quarantine = QuarantineQueue()
    pipeline.fault_injector = (
        FaultInjector(task.specs, seed=task.seed) if task.specs else None
    )
    for owner in (pipeline.detector, pipeline.extractor):
        if hasattr(owner, "total_run_stats"):
            owner.total_run_stats = RunStats()
            owner.last_run_stats = None

    error: Exception | None = None
    records: list = []
    try:
        records = pipeline.process_reports(
            list(task.reports), on_error=task.mode, workers=1
        )
    except ReproError as raised:
        error = raised  # re-raised by the coordinator in shard order
    return ShardResult(
        index=task.index,
        start=task.start,
        records=records,
        quarantine=list(pipeline.quarantine),
        stats=pipeline.last_run_stats,
        extractor_stats=getattr(
            pipeline.extractor, "total_run_stats", None
        ),
        detector_stats=getattr(pipeline.detector, "total_run_stats", None),
        error=error,
    )


def _default_start_method() -> str:
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else "spawn"


def _map_tasks(
    tasks: Sequence[ShardTask],
    broadcast: PipelineBroadcast,
    workers: int,
    start_method: str | None,
) -> list[ShardResult]:
    """Run shard tasks: in-process for one worker, a pool otherwise.

    The single-worker path still executes on a pipeline *restored from
    the broadcast* (never the caller's), so ``workers=1`` and
    ``workers=N`` traverse byte-for-byte the same code and state.
    """
    if workers <= 1 or len(tasks) <= 1:
        local = restore_pipeline(broadcast)
        return [run_shard(task, pipeline=local) for task in tasks]
    payload = pickle.dumps(broadcast, protocol=pickle.HIGHEST_PROTOCOL)
    context = multiprocessing.get_context(
        start_method or _default_start_method()
    )
    with context.Pool(
        processes=min(workers, len(tasks)),
        initializer=_init_worker,
        initargs=(payload,),
    ) as pool:
        return pool.map(run_shard, tasks, chunksize=1)


def map_shards(
    tasks: Sequence[Any],
    func: Any,
    *,
    workers: int | str | None = None,
    start_method: str | None = None,
) -> list[Any]:
    """Map a picklable top-level function over shard task payloads.

    The generic sibling of :func:`_map_tasks` for shard work that does
    not need a model broadcast (e.g. knowledge-graph ingestion): results
    come back in input order, ``workers<=1`` runs in-process through the
    exact same call path, and ``func`` must be a module-level function so
    it pickles under the ``spawn`` start method.
    """
    tasks = list(tasks)
    count = resolve_workers(workers)
    if not tasks:
        return []
    if count <= 1 or len(tasks) <= 1:
        return [func(task) for task in tasks]
    context = multiprocessing.get_context(
        start_method or _default_start_method()
    )
    with context.Pool(processes=min(count, len(tasks))) as pool:
        return pool.map(func, tasks, chunksize=1)


# -- supervised async execution -----------------------------------------------


class WorkerPool:
    """Broadcast-initialized process pool with an async submit surface.

    The synchronous entry points in this module (``pool.map``) block
    until every shard returns, which leaves no room for supervision: a
    hung worker stalls the whole corpus. ``WorkerPool`` keeps the same
    one-shot broadcast + initializer contract but hands out
    ``AsyncResult`` handles, so the :class:`~repro.runtime.supervisor.
    RunSupervisor` can claim work under leases, poll for completion,
    detect hung workers, and re-grant their segments — the PR 7
    at-least-once pattern applied to batch runs.

    Args:
        broadcast: a :class:`PipelineBroadcast` shipped once at spawn.
        workers: pool size (submission beyond it queues inside the pool).
        runner: module-level function applied to each submitted task.
        initializer: module-level pool initializer taking the pickled
            broadcast payload (e.g. restores it into a worker global).
        start_method: multiprocessing start method (default ``fork``
            where available, else ``spawn``).
    """

    def __init__(
        self,
        broadcast: PipelineBroadcast,
        *,
        workers: int,
        runner: Any,
        initializer: Any,
        start_method: str | None = None,
    ) -> None:
        self.workers = max(1, int(workers))
        self._runner = runner
        payload = pickle.dumps(broadcast, protocol=pickle.HIGHEST_PROTOCOL)
        context = multiprocessing.get_context(
            start_method or _default_start_method()
        )
        self._pool = context.Pool(
            processes=self.workers,
            initializer=initializer,
            initargs=(payload,),
        )
        self._closed = False

    def submit(self, task: Any):
        """Dispatch one task; returns its ``AsyncResult`` handle."""
        return self._pool.apply_async(self._runner, (task,))

    def close(self, *, force: bool = False) -> None:
        """Shut the pool down; ``force`` kills workers instead of waiting.

        ``force=True`` is the hung-worker/deadline path — a graceful
        close would join forever on a wedged process.
        """
        if self._closed:
            return
        self._closed = True
        if force:
            self._pool.terminate()
        else:
            self._pool.close()
        self._pool.join()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close(force=exc[0] is not None)


# -- the corpus entry point ---------------------------------------------------


def process_reports_parallel(
    pipeline: "GoalSpotter",
    reports: Sequence["SustainabilityReport"],
    *,
    workers: int | str | None = None,
    on_error: str | None = None,
    num_shards: int | None = None,
    shard_faults: Mapping[int, Sequence[FaultSpec]] | None = None,
    start_method: str | None = None,
) -> list["ExtractedRecord"]:
    """Run ``pipeline.process_reports`` data-parallel over shards.

    Bitwise-identical to the sequential call (records, scores,
    quarantine) for any ``workers``/``num_shards`` split; see the module
    docstring for why. Results are restored to exact input order;
    quarantine entries merge into ``pipeline.quarantine`` in input order;
    ``pipeline.last_run_stats`` becomes a merged view whose counters are
    the exact sums of the per-shard counters (kept under ``"shards"``).

    Args:
        workers: process count (``None``/``"auto"`` = CPU count).
        on_error: overrides the pipeline's policy for this call.
        num_shards: shard count (default ``workers``); may exceed
            ``workers`` for finer balancing, or pin the shard layout
            while varying ``workers`` (the determinism suite does this).
        shard_faults: extra :class:`FaultSpec` lists keyed by shard
            index — chaos testing of exactly one shard. Specs on
            ``pipeline.fault_injector`` apply to *every* shard, each
            under its own :func:`shard_seed`.
        start_method: multiprocessing start method (default ``fork``
            where available, else ``spawn``).
    """
    mode = on_error if on_error is not None else pipeline.on_error
    reports = list(reports)
    workers = resolve_workers(workers)
    if not reports:
        return pipeline.process_reports([], on_error=mode, workers=1)

    wall_start = time.perf_counter()
    with_timer = PerfCounters()
    with with_timer.timer("broadcast_seconds"):
        broadcast = broadcast_pipeline(pipeline)

    costs = [estimate_report_cost(report) for report in reports]
    shards = plan_shards(costs, min(num_shards or workers, len(reports)))
    extra_faults = dict(shard_faults or {})
    base_injector = pipeline.fault_injector
    base_specs = (
        tuple(base_injector.specs) if base_injector is not None else ()
    )
    base_seed = base_injector.seed if base_injector is not None else 0
    tasks = [
        ShardTask(
            index=shard.index,
            start=shard.start,
            reports=tuple(reports[shard.start : shard.stop]),
            mode=mode,
            specs=base_specs + tuple(extra_faults.get(shard.index, ())),
            seed=shard_seed(base_seed, shard.index),
        )
        for shard in shards
    ]

    results = _map_tasks(tasks, broadcast, workers, start_method)
    results.sort(key=lambda result: result.start)

    for result in results:
        if result.error is not None:
            raise result.error  # mode="raise": first failure, input order

    records: list = []
    quarantine: list[QuarantineEntry] = []
    for result in results:
        records.extend(result.records)
        quarantine.extend(result.quarantine)
    pipeline.quarantine.extend(quarantine)

    wall = time.perf_counter() - wall_start
    pipeline.last_run_stats = _merge_shard_stats(
        pipeline,
        results,
        mode=mode,
        workers=workers,
        wall=wall,
        broadcast_seconds=with_timer.get("broadcast_seconds"),
        broadcast_bytes=broadcast.num_bytes,
        num_records=len(records),
    )
    return records


#: last_run_stats keys summed across shards by the merge.
_SUMMED_STAT_KEYS = (
    "detect_seconds",
    "extract_seconds",
    "blocks",
    "detected_blocks",
    "extraction_units",
    "records",
    "retries",
    "failures",
    "degraded_records",
    "failed_records",
    "fallback_documents",
    "quarantined_documents",
    "sanitized_blocks",
)


def _merge_shard_stats(
    pipeline: Any,
    results: Sequence[ShardResult],
    *,
    mode: str,
    workers: int,
    wall: float,
    broadcast_seconds: float,
    broadcast_bytes: int,
    num_records: int,
) -> dict:
    """One run-stats dict whose counters sum the per-shard counters."""
    merged: dict = {name: 0 for name in _SUMMED_STAT_KEYS}
    shard_wall = 0.0
    fast_path = True
    for result in results:
        stats = result.stats or {}
        for name in _SUMMED_STAT_KEYS:
            merged[name] += stats.get(name, 0)
        shard_wall += stats.get("wall_seconds", 0.0)
        fast_path = fast_path and bool(stats.get("fast_path", True))

    extractor_stats = RunStats()
    detector_stats = RunStats()
    for result in results:
        if result.extractor_stats is not None:
            extractor_stats = extractor_stats.merge(result.extractor_stats)
        if result.detector_stats is not None:
            detector_stats = detector_stats.merge(result.detector_stats)
    for owner, stats in (
        (pipeline.extractor, extractor_stats),
        (pipeline.detector, detector_stats),
    ):
        if hasattr(owner, "total_run_stats"):
            owner.total_run_stats = owner.total_run_stats.merge(stats)
            owner.last_run_stats = stats

    blocks = int(merged["blocks"])
    merged.update(
        {
            "wall_seconds": wall,
            "blocks_per_second": blocks / wall if wall > 0 else 0.0,
            "records": num_records,
            "on_error": mode,
            "fast_path": fast_path,
            "extractor": extractor_stats.as_dict(),
            # Parallel-runtime observability:
            "workers": workers,
            "num_shards": len(results),
            "shard_wall_seconds": shard_wall,
            "broadcast_seconds": broadcast_seconds,
            "broadcast_bytes": broadcast_bytes,
            "shards": [result.stats for result in results],
        }
    )
    return merged


# -- the bulk extractor entry point -------------------------------------------


@dataclasses.dataclass(frozen=True)
class _ExtractTask:
    index: int
    start: int
    texts: tuple


def _init_extract_worker(payload: bytes) -> None:
    global _WORKER_EXTRACTOR
    _WORKER_EXTRACTOR = restore_pipeline(pickle.loads(payload))


def _run_extract_shard(task: _ExtractTask):
    extractor = _WORKER_EXTRACTOR
    if extractor is None:
        raise RuntimeError("extract worker was not initialized")
    details = extractor.extract_batch(list(task.texts))
    return (
        task.index,
        task.start,
        details,
        getattr(extractor, "last_run_stats", None),
    )


def extract_batch_parallel(
    extractor: "WeakSupervisionExtractor",
    texts: Sequence[str],
    *,
    workers: int | str | None = None,
    num_shards: int | None = None,
    start_method: str | None = None,
) -> list[dict[str, str]]:
    """Shard ``extractor.extract_batch`` across worker processes.

    Bitwise-identical to the sequential call and restored to input
    order (contiguous shards, packing-invariant logits). The merged
    per-shard :class:`RunStats` lands in ``extractor.last_run_stats``
    and folds into ``extractor.total_run_stats``.

    With ``result_cache_capacity`` set on the extractor config, each
    shard worker runs its own *fresh* cache (the broadcast pickles the
    cache as empty): repeats within one worker's shards hit, repeats
    split across workers miss (a single worker therefore sees more hits
    than a wide pool), and the per-shard ``result_cache_*`` stats merge
    back additively. Values never depend on cache state, so caching
    keeps ``workers=N`` bitwise-identical to ``workers=1``.
    """
    texts = list(texts)
    workers = resolve_workers(workers)
    if not texts:
        return []
    broadcast = broadcast_extractor(extractor)
    costs = [estimate_text_cost(text) for text in texts]
    shards = plan_shards(costs, min(num_shards or workers, len(texts)))
    tasks = [
        _ExtractTask(
            index=shard.index,
            start=shard.start,
            texts=tuple(texts[shard.start : shard.stop]),
        )
        for shard in shards
    ]
    if workers <= 1 or len(tasks) <= 1:
        local = restore_pipeline(broadcast)
        outcomes = [_run_extract_shard_on(task, local) for task in tasks]
    else:
        payload = pickle.dumps(broadcast, protocol=pickle.HIGHEST_PROTOCOL)
        context = multiprocessing.get_context(
            start_method or _default_start_method()
        )
        with context.Pool(
            processes=min(workers, len(tasks)),
            initializer=_init_extract_worker,
            initargs=(payload,),
        ) as pool:
            outcomes = pool.map(_run_extract_shard, tasks, chunksize=1)
    outcomes.sort(key=lambda outcome: outcome[1])
    details: list[dict[str, str]] = []
    merged = RunStats()
    for __, __, shard_details, shard_stats in outcomes:
        details.extend(shard_details)
        if shard_stats is not None:
            merged = merged.merge(shard_stats)
    if hasattr(extractor, "total_run_stats"):
        with extractor._stats_lock:
            extractor.last_run_stats = merged
            extractor.total_run_stats = extractor.total_run_stats.merge(
                merged
            )
    return details


def _run_extract_shard_on(task: _ExtractTask, extractor: Any):
    details = extractor.extract_batch(list(task.texts))
    return (
        task.index,
        task.start,
        details,
        getattr(extractor, "last_run_stats", None),
    )


# -- the bulk classifier entry point ------------------------------------------


_WORKER_CLASSIFIER: Any = None


def _init_classify_worker(payload: bytes) -> None:
    global _WORKER_CLASSIFIER
    _WORKER_CLASSIFIER = restore_pipeline(pickle.loads(payload))


def _run_classify_shard(task: _ExtractTask):
    classifier = _WORKER_CLASSIFIER
    if classifier is None:
        raise RuntimeError("classify worker was not initialized")
    return _run_classify_shard_on(task, classifier)


def _run_classify_shard_on(task: _ExtractTask, classifier: Any):
    probabilities = classifier.predict_proba(list(task.texts))
    return (
        task.index,
        task.start,
        probabilities,
        getattr(classifier, "last_run_stats", None),
    )


def classify_batch_parallel(
    classifier: Any,
    texts: Sequence[str],
    *,
    workers: int | str | None = None,
    num_shards: int | None = None,
    start_method: str | None = None,
):
    """Shard ``classifier.predict_proba`` across worker processes.

    The classification sibling of :func:`extract_batch_parallel`: the
    fitted classifier is broadcast once, contiguous token-balanced shards
    are scored independently, and the probability rows are concatenated
    back into exact input order. Packing-invariant logits make the result
    bitwise-identical to the sequential call for any ``workers``/
    ``num_shards`` split; the single-worker path also runs on a pipeline
    restored from the broadcast so both paths share state handling.
    Merged per-shard :class:`RunStats` land in
    ``classifier.last_run_stats`` / ``total_run_stats``.
    """
    import numpy as np

    texts = list(texts)
    workers = resolve_workers(workers)
    if not texts:
        return classifier.predict_proba([])
    broadcast = broadcast_classifier(classifier)
    costs = [estimate_text_cost(text) for text in texts]
    shards = plan_shards(costs, min(num_shards or workers, len(texts)))
    tasks = [
        _ExtractTask(
            index=shard.index,
            start=shard.start,
            texts=tuple(texts[shard.start : shard.stop]),
        )
        for shard in shards
    ]
    if workers <= 1 or len(tasks) <= 1:
        local = restore_pipeline(broadcast)
        outcomes = [_run_classify_shard_on(task, local) for task in tasks]
    else:
        payload = pickle.dumps(broadcast, protocol=pickle.HIGHEST_PROTOCOL)
        context = multiprocessing.get_context(
            start_method or _default_start_method()
        )
        with context.Pool(
            processes=min(workers, len(tasks)),
            initializer=_init_classify_worker,
            initargs=(payload,),
        ) as pool:
            outcomes = pool.map(_run_classify_shard, tasks, chunksize=1)
    outcomes.sort(key=lambda outcome: outcome[1])
    merged = RunStats()
    rows = []
    for __, __, shard_rows, shard_stats in outcomes:
        rows.append(shard_rows)
        if shard_stats is not None:
            merged = merged.merge(shard_stats)
    if hasattr(classifier, "total_run_stats"):
        with classifier._stats_lock:
            classifier.last_run_stats = merged
            classifier.total_run_stats = classifier.total_run_stats.merge(
                merged
            )
    return np.concatenate(rows, axis=0)
