"""Content-addressed cross-request inference result cache.

Sustainability report corpora are boilerplate-heavy: the same objective
sentences recur across reports, reporting years, and serving requests, so
the encoder forward — the hot path since the bucketed scheduler landed —
keeps recomputing identical work. This module caches *results* (per-token
logits, class-probability rows, even final serving values) keyed by
content, so a repeated input costs one hash lookup instead of a forward
pass.

Why this is safe on this substrate:

* **Keys are content-addressed and model-pinned.** A key hashes the
  normalized token ids (or request texts) together with the model's
  :meth:`~repro.nn.module.Module.fingerprint` — the same SHA-256
  weight-content digest convention as :func:`repro.nn.serialize.state_digest`
  and the PR 5 artifact manifests — plus a variant tag for alternate
  numeric paths (e.g. ``"int8"``). A hot-swapped checkpoint, a resumed
  fine-tune, or an enabled quantization path each change the key, so the
  cache can never serve records computed by different weights.
* **Hits are bitwise-identical to misses.** The scheduler's packing
  invariance (PR 1) guarantees a sequence's logits do not depend on its
  microbatch-mates, so computing only the misses — in whatever packing
  they land in — reproduces exactly what a full uncached run would have
  produced.
* **Eviction is bounded and seeded-deterministic.** At capacity the cache
  evicts a pseudo-random entry drawn from a generator seeded at
  construction: random replacement is scan-resistant (a one-pass corpus
  sweep cannot flush the resident boilerplate the way LRU's would), and
  seeding it makes hit/miss/eviction *statistics* reproducible run to
  run. Eviction only ever affects speed — never values.

Thread-safe throughout: the serving engine probes and fills one shared
cache from many worker threads.
"""

from __future__ import annotations

import hashlib
import threading
from collections.abc import Iterable
from typing import Any

import numpy as np

__all__ = [
    "CacheStats",
    "ResultCache",
    "result_key",
]

#: Counter names the prediction paths emit into ``PerfCounters`` (and
#: ``RunStats`` surfaces; see DESIGN.md §6e for the full contract).
HITS = "result_cache_hits"
MISSES = "result_cache_misses"
EVICTIONS = "result_cache_evictions"
BYPASSES = "result_cache_bypasses"
CACHED_TOKENS = "result_cache_tokens"


def result_key(
    token_ids: Iterable[int] | str,
    model_fingerprint: str,
    variant: str = "",
) -> str:
    """Content-addressed cache key: ids/text + weights + numeric variant.

    ``token_ids`` is the normalized token id sequence (the classifier
    layer) or a raw text payload (the serving layer). The model
    fingerprint pins the exact weight bytes; ``variant`` separates
    alternate numeric paths over the same weights (the int8 encoder path
    must never share entries with fp32).
    """
    digest = hashlib.sha256()
    digest.update(model_fingerprint.encode("ascii"))
    digest.update(b"|")
    digest.update(variant.encode("utf-8"))
    digest.update(b"|")
    if isinstance(token_ids, str):
        digest.update(b"text:")
        digest.update(token_ids.encode("utf-8"))
    else:
        digest.update(b"ids:")
        digest.update(np.asarray(list(token_ids), dtype=np.int64).tobytes())
    return digest.hexdigest()


class CacheStats:
    """Thread-safe hit/miss/eviction/insertion counters."""

    __slots__ = ("hits", "misses", "evictions", "insertions", "_lock")

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.insertions = 0
        self._lock = threading.Lock()

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        lookups = self.lookups
        return self.hits / lookups if lookups else 0.0

    def snapshot(self) -> dict[str, float]:
        """JSON-ready point-in-time view (hit_rate included)."""
        with self._lock:
            hits, misses = self.hits, self.misses
            evictions, insertions = self.evictions, self.insertions
        lookups = hits + misses
        return {
            "hits": hits,
            "misses": misses,
            "evictions": evictions,
            "insertions": insertions,
            "hit_rate": hits / lookups if lookups else 0.0,
        }


class ResultCache:
    """Bounded, thread-safe, content-addressed result store.

    Values are stored as read-only copies (numpy arrays get a frozen
    copy; other values are stored as-is and must be treated as
    immutable) and returned by reference — callers that mutate results
    must copy first, which the classifier integration does.

    Args:
        capacity: maximum number of entries (must be positive).
        seed: seed of the eviction generator; two caches built with the
            same seed and fed the same operation sequence evict the same
            keys, making cache statistics reproducible.
    """

    def __init__(self, capacity: int = 4096, seed: int = 0) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.seed = seed
        self.stats = CacheStats()
        self._entries: dict[str, Any] = {}
        self._rng = np.random.default_rng(seed)
        self._lock = threading.Lock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __getstate__(self) -> dict:
        # Caches are value-transparent; a pickled copy (parallel-shard
        # broadcast, serving snapshots) starts empty with fresh stats so
        # every worker's numbers describe only its own shard.
        return {"capacity": self.capacity, "seed": self.seed}

    def __setstate__(self, state: dict) -> None:
        self.__init__(capacity=state["capacity"], seed=state["seed"])

    def get(self, key: str) -> Any | None:
        """The cached value for ``key``, or ``None`` (counted hit/miss)."""
        with self._lock:
            value = self._entries.get(key)
            with self.stats._lock:
                if value is None:
                    self.stats.misses += 1
                else:
                    self.stats.hits += 1
            return value

    def peek(self, key: str) -> Any | None:
        """Like :meth:`get` but without touching hit/miss statistics."""
        with self._lock:
            return self._entries.get(key)

    def put(self, key: str, value: Any) -> int:
        """Insert ``value`` under ``key``; returns how many were evicted.

        Numpy arrays are copied and frozen so later in-place edits by the
        producer can never corrupt cached results. Re-inserting an
        existing key overwrites in place (no eviction).
        """
        if isinstance(value, np.ndarray):
            value = value.copy()
            value.setflags(write=False)
        with self._lock:
            evicted = 0
            if key not in self._entries:
                while len(self._entries) >= self.capacity:
                    keys = list(self._entries)
                    victim = keys[int(self._rng.integers(len(keys)))]
                    del self._entries[victim]
                    evicted += 1
            self._entries[key] = value
            with self.stats._lock:
                self.stats.insertions += 1
                self.stats.evictions += evicted
            return evicted

    def clear(self) -> None:
        """Drop every entry (statistics are preserved)."""
        with self._lock:
            self._entries.clear()

    def drain_counters(self, counters) -> None:
        """Fold current stats into a ``PerfCounters`` and reset them.

        Emits the documented counter names (``result_cache_hits``,
        ``result_cache_misses``, ``result_cache_evictions``) so one
        run's :class:`~repro.runtime.profiling.RunStats` sees exactly the
        activity since the previous drain — which is what lets per-shard
        stats merge back additively in the parallel runtime.
        """
        with self.stats._lock:
            hits, misses = self.stats.hits, self.stats.misses
            evictions = self.stats.evictions
            self.stats.hits = 0
            self.stats.misses = 0
            self.stats.evictions = 0
            self.stats.insertions = 0
        if hits:
            counters.add(HITS, hits)
        if misses:
            counters.add(MISSES, misses)
        if evictions:
            counters.add(EVICTIONS, evictions)
