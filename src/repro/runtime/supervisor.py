"""Lease-based worker supervision for durable corpus runs (DESIGN §6i).

:mod:`repro.runtime.journal` makes committed work crash-safe; this
module makes the *execution* of the remaining work supervised. A
:class:`RunSupervisor` claims pending journal segments under leases,
dispatches them to a transport (an async broadcast worker pool or an
in-process executor), and enforces the failure model batch runs never
had:

* **hung-worker reaping** — a lease whose worker stops heartbeating (or
  never completes within ``lease_timeout``) is reaped and re-granted to
  a fresh worker, up to ``max_regrants`` times. Re-executed segments are
  bitwise-identical (deterministic per-segment seeds + packing-invariant
  logits, the PR 7 at-least-once argument), and the journal's
  first-write-wins commit discards any late duplicate from the reaped
  worker.
* **global run deadline** — a wall-clock budget for the whole run; on
  expiry the transport is force-closed and :class:`StageTimeout` raised
  with every committed segment still durable (the run resumes).
* **graceful drain** — SIGINT/SIGTERM (via :class:`GracefulShutdown`)
  stops granting new leases, waits up to ``drain_timeout`` for in-flight
  segments to commit, then raises
  :class:`~repro.runtime.errors.RunInterrupted`; the CLI maps it to the
  documented partial-success exit code.

The module also hosts the two durable run drivers built on journal +
supervisor: :func:`run_durable_rows` (bulk text→row inference for any
registered task, extraction or classification) and
:func:`run_durable_reports` (the GoalSpotter corpus path, with
quarantine entries persisted into the journal so poison documents are
not retried on resume).
"""

from __future__ import annotations

import dataclasses
import math
import pickle
import signal
import threading
import time
from collections import deque
from typing import Any, Callable, Sequence

from repro.runtime.checkpoint import config_fingerprint
from repro.runtime.errors import (
    ReproError,
    RunInterrupted,
    StageTimeout,
    error_from_context,
)
from repro.runtime.journal import RunJournal, input_digest
from repro.runtime.parallel import (
    WorkerPool,
    broadcast_classifier,
    broadcast_extractor,
    broadcast_pipeline,
    estimate_report_cost,
    estimate_text_cost,
    plan_shards,
    restore_pipeline,
    shard_seed,
)
from repro.runtime.resilience import (
    FaultInjector,
    FaultSpec,
    QuarantineQueue,
    RetryPolicy,
    run_stage,
)
from repro.runtime.profiling import RunStats

__all__ = [
    "DEFAULT_SEGMENT_ITEMS",
    "DurableRunResult",
    "GracefulShutdown",
    "Lease",
    "PoolTransport",
    "RunSupervisor",
    "SegmentOutcome",
    "SegmentWork",
    "SupervisorConfig",
    "plan_segments",
    "run_durable_reports",
    "run_durable_rows",
]

#: Default documents/texts per journal segment (the commit granularity).
DEFAULT_SEGMENT_ITEMS = 16

#: Row kinds understood by the segment executor.
KIND_EXTRACTION = "extraction"
KIND_CLASSIFICATION = "classification"
KIND_PIPELINE = "pipeline"


# -- graceful shutdown --------------------------------------------------------


class GracefulShutdown:
    """Context manager turning SIGINT/SIGTERM into a drain request.

    Installs handlers on entry (previous handlers are restored on exit)
    that set :attr:`event` instead of killing the process mid-write; the
    durable run loops check the event between segments / supervisor
    ticks and drain. A *second* signal restores default handling, so a
    stuck drain can still be interrupted the ordinary way.

    ``on_signal`` (optional) runs inside the handler after the event is
    set — e.g. ``CheckpointManager.request_drain`` for training loops
    that poll a checkpoint cadence instead of the event.
    """

    def __init__(
        self,
        signals: Sequence[int] = (),
        *,
        on_signal: Callable[[], None] | None = None,
    ) -> None:
        self._signals = tuple(signals) or (signal.SIGINT, signal.SIGTERM)
        self._previous: dict[int, Any] = {}
        self._on_signal = on_signal
        self.event = threading.Event()
        self.signal_name: str | None = None

    def _handle(self, signum, frame) -> None:
        self.signal_name = signal.Signals(signum).name
        self.event.set()
        if self._on_signal is not None:
            self._on_signal()
        # Escalation path: a second signal behaves like an un-handled one.
        signal.signal(signum, self._previous.get(signum, signal.SIG_DFL))

    def __enter__(self) -> "GracefulShutdown":
        for signum in self._signals:
            self._previous[signum] = signal.signal(signum, self._handle)
        return self

    def __exit__(self, *exc) -> None:
        for signum, handler in self._previous.items():
            signal.signal(signum, handler)
        self._previous.clear()

    @property
    def requested(self) -> bool:
        return self.event.is_set()


# -- work units ---------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class SegmentWork:
    """One journal segment's worth of work, picklable for the pool."""

    index: int
    start: int
    stop: int
    kind: str  # extraction | classification | pipeline
    items: tuple  # texts (rows kinds) or SustainabilityReports (pipeline)
    mode: str  # on_error policy
    fields: tuple[str, ...]  # empty-row schema for skip/degrade
    specs: tuple[FaultSpec, ...] = ()  # host-level fault specs
    seed: int = 0  # per-segment injector seed


@dataclasses.dataclass
class SegmentOutcome:
    """What a segment execution sends back to the supervisor."""

    index: int
    rows: list
    quarantine: list  # list[dict] — QuarantineEntry.as_dict payloads
    error: dict | None = None  # ReproError.context() + {"retryable": bool}


def _host_rows(host: Any, kind: str, texts: list[str]) -> list[dict]:
    """One raw row per text — must match ``TaskModel.run_batch`` exactly."""
    if kind == KIND_EXTRACTION:
        return host.extract_batch(list(texts))
    if kind == KIND_CLASSIFICATION:
        from repro.models.text_classifier import classification_rows

        return classification_rows(host.labels, host.predict_proba(list(texts)))
    raise ReproError(f"unknown durable row kind {kind!r}", stage="run")


def _rows_segment(host: Any, work: SegmentWork) -> list[dict]:
    """Resilient rows for one segment: the ``run_resilient`` ladder.

    Optimistic whole-segment attempt first; under ``skip``/``degrade``
    each text is then retried in isolation so one poisoned input cannot
    take down its segment-mates. Statuses mirror
    :meth:`repro.tasks.models.TaskModel.run_resilient` exactly.
    """
    texts = list(work.items)
    policy = RetryPolicy(max_retries=0, base_delay=0.0, jitter=0.0)
    try:
        rows = run_stage(
            lambda: _host_rows(host, work.kind, texts),
            stage=work.kind,
            policy=policy,
        )
        return [{"row": row, "status": "ok"} for row in rows]
    except ReproError:
        if work.mode == "raise":
            raise
    payloads: list[dict] = []
    for text in texts:
        try:
            row = run_stage(
                lambda t=text: _host_rows(host, work.kind, [t])[0],
                stage=work.kind,
                policy=policy,
            )
            payloads.append({"row": row, "status": "ok"})
        except ReproError:
            status = "skipped" if work.mode == "skip" else "degraded"
            empty = {field: "" for field in work.fields}
            payloads.append({"row": empty, "status": status})
    return payloads


def _pipeline_segment(host: Any, work: SegmentWork) -> tuple[list, list]:
    """Run one report segment through a broadcast-restored GoalSpotter.

    Run-scoped state is reset first (fresh quarantine, per-segment fault
    injector under the segment seed) exactly like
    :func:`repro.runtime.parallel.run_shard`, so a segment's outcome —
    records *and* quarantine — depends only on its inputs and the
    broadcast, never on which execution attempt produced it.
    """
    from repro.goalspotter.pipeline import record_to_payload

    host.quarantine = QuarantineQueue()
    host.fault_injector = (
        FaultInjector(work.specs, seed=work.seed) if work.specs else None
    )
    for owner in (host.detector, host.extractor):
        if hasattr(owner, "total_run_stats"):
            owner.total_run_stats = RunStats()
            owner.last_run_stats = None
    records = host.process_reports(
        list(work.items), on_error=work.mode, workers=1
    )
    return (
        [record_to_payload(record) for record in records],
        host.quarantine.as_dicts(),
    )


def _execute_segment(host: Any, work: SegmentWork) -> SegmentOutcome:
    """Run one segment on ``host``; failures come back as typed payloads."""
    try:
        if work.kind == KIND_PIPELINE:
            rows, quarantine = _pipeline_segment(host, work)
        else:
            if hasattr(host, "fault_injector"):
                host.fault_injector = (
                    FaultInjector(work.specs, seed=work.seed)
                    if work.specs
                    else None
                )
            rows = _rows_segment(host, work)
            quarantine = []
        return SegmentOutcome(index=work.index, rows=rows, quarantine=quarantine)
    except ReproError as error:
        payload = error.context()
        payload["retryable"] = error.retryable
        return SegmentOutcome(
            index=work.index, rows=[], quarantine=[], error=payload
        )


# -- transports ---------------------------------------------------------------

_DURABLE_HOST: Any = None


def _init_durable_worker(payload: bytes) -> None:
    """Pool initializer: restore the broadcast host exactly once."""
    global _DURABLE_HOST
    _DURABLE_HOST = restore_pipeline(pickle.loads(payload))


def _run_segment_worker(work: SegmentWork) -> SegmentOutcome:
    if _DURABLE_HOST is None:
        raise RuntimeError("durable segment worker was not initialized")
    return _execute_segment(_DURABLE_HOST, work)


class PoolTransport:
    """Supervisor transport over a :class:`WorkerPool` of processes.

    ``submit`` returns the pool's ``AsyncResult`` handle; ``poll`` is
    non-blocking. Process-pool workers cannot heartbeat mid-segment (a
    segment is one call), so :meth:`heartbeat` reports ``None`` and
    lease expiry falls back to grant time + ``lease_timeout`` — size the
    timeout to cover a whole segment.
    """

    def __init__(
        self,
        broadcast,
        *,
        workers: int,
        start_method: str | None = None,
    ) -> None:
        self._pool = WorkerPool(
            broadcast,
            workers=workers,
            runner=_run_segment_worker,
            initializer=_init_durable_worker,
            start_method=start_method,
        )
        self.capacity = self._pool.workers

    def submit(self, work: SegmentWork):
        return self._pool.submit(work)

    def poll(self, handle) -> SegmentOutcome | None:
        if not handle.ready():
            return None
        try:
            return handle.get(timeout=0)
        except Exception as error:  # worker died un-caught (e.g. killed)
            wrapped = ReproError(
                f"segment worker failed: {type(error).__name__}: {error}",
                stage="run",
            )
            payload = wrapped.context()
            payload["retryable"] = True
            return SegmentOutcome(index=-1, rows=[], quarantine=[], error=payload)

    def heartbeat(self, handle) -> float | None:
        return None

    def close(self, *, force: bool = False) -> None:
        self._pool.close(force=force)


# -- the supervisor -----------------------------------------------------------


@dataclasses.dataclass
class SupervisorConfig:
    """Failure-model knobs for one supervised run."""

    lease_timeout: float = 60.0  # seconds a lease may run un-heartbeated
    max_regrants: int = 2  # re-grants per segment before giving up
    run_deadline: float | None = None  # wall-clock budget for the run
    poll_interval: float = 0.01  # supervisor tick when nothing progressed
    drain_timeout: float = 10.0  # grace window for in-flight segments


@dataclasses.dataclass
class Lease:
    """One segment's claim: who ran it, since when, how many grants."""

    work: SegmentWork
    handles: list  # newest last; stale handles from reaped grants kept
    granted_at: float
    generation: int = 0  # 0 = first grant


class RunSupervisor:
    """Drive pending segments through a transport under leases.

    Every completed segment commits to ``journal`` immediately (no
    end-of-run barrier), so the crash window never exceeds one segment.
    Stale results from reaped grants are welcome: whichever execution
    finishes first commits, the journal's first-write-wins dedupe
    absorbs the rest, and the bitwise guarantee makes the choice
    unobservable.
    """

    def __init__(
        self,
        journal: RunJournal,
        transport,
        *,
        config: SupervisorConfig | None = None,
        drain_event: threading.Event | None = None,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.journal = journal
        self.transport = transport
        self.config = config or SupervisorConfig()
        self._drain = drain_event or threading.Event()
        self._clock = clock
        self._sleep = sleep
        self.stats = {
            "leases_granted": 0,
            "reaped": 0,
            "regrants": 0,
            "worker_failures": 0,
            "drained": False,
        }

    def request_drain(self) -> None:
        """Stop granting; commit in-flight work; raise ``RunInterrupted``."""
        self._drain.set()

    # -- lease bookkeeping -------------------------------------------------

    def _grant(self, work: SegmentWork) -> Lease:
        handle = self.transport.submit(work)
        self.stats["leases_granted"] += 1
        return Lease(work=work, handles=[handle], granted_at=self._clock())

    def _regrant(self, lease: Lease, *, keep_stale: bool) -> None:
        if not keep_stale:
            lease.handles.clear()
        lease.handles.append(self.transport.submit(lease.work))
        lease.granted_at = self._clock()
        lease.generation += 1
        self.stats["leases_granted"] += 1
        self.stats["regrants"] += 1

    def _poll_lease(self, lease: Lease) -> SegmentOutcome | None:
        # First finisher wins — a reaped grant's late result is as good
        # as the re-grant's (bitwise-identical by construction).
        for handle in lease.handles:
            outcome = self.transport.poll(handle)
            if outcome is not None:
                return outcome
        return None

    def _expired(self, lease: Lease, now: float) -> bool:
        basis = lease.granted_at
        beat = getattr(self.transport, "heartbeat", lambda handle: None)(
            lease.handles[-1]
        )
        if beat is not None:
            basis = max(basis, beat)
        return now - basis > self.config.lease_timeout

    # -- the loop ----------------------------------------------------------

    def run(self, works: Sequence[SegmentWork]) -> None:
        """Execute and commit every segment in ``works``.

        Raises :class:`StageTimeout` on the run deadline or an exhausted
        segment (``max_regrants`` re-grants all hung/failed),
        :class:`RunInterrupted` on drain, and the reconstructed worker
        error when a segment fails non-retryably — in every case with
        all previously committed segments durable in the journal.
        """
        started = self._clock()
        pending = deque(sorted(works, key=lambda work: work.index))
        leases: dict[int, Lease] = {}
        capacity = max(1, int(getattr(self.transport, "capacity", 1)))
        while pending or leases:
            now = self._clock()
            deadline = self.config.run_deadline
            if deadline is not None and now - started > deadline:
                self.transport.close(force=True)
                raise StageTimeout(
                    f"run deadline of {deadline}s exceeded with "
                    f"{len(self.journal.segments)} segments committed; "
                    "the journal is intact — re-run with --resume",
                    stage="run",
                )
            if self._drain.is_set():
                self._drain_in_flight(leases)
            while pending and len(leases) < capacity:
                work = pending.popleft()
                leases[work.index] = self._grant(work)
            progressed = False
            for index in list(leases):
                lease = leases[index]
                outcome = self._poll_lease(lease)
                if outcome is not None:
                    progressed = True
                    if self._settle(lease, outcome):
                        del leases[index]
                elif self._expired(lease, self._clock()):
                    progressed = True
                    self._reap(lease)
            if not progressed:
                self._sleep(self.config.poll_interval)

    def _settle(self, lease: Lease, outcome: SegmentOutcome) -> bool:
        """Commit a finished segment (True) or retry a failed one (False)."""
        if outcome.error is None:
            self.journal.commit_segment(
                lease.work.index, outcome.rows, quarantine=outcome.quarantine
            )
            return True
        self.stats["worker_failures"] += 1
        error = error_from_context(outcome.error)
        retryable = bool(outcome.error.get("retryable", error.retryable))
        if not retryable or lease.generation >= self.config.max_regrants:
            self.transport.close(force=True)
            raise error
        self._regrant(lease, keep_stale=False)
        return False

    def _reap(self, lease: Lease) -> None:
        """A lease ran past its timeout without a heartbeat: re-grant."""
        self.stats["reaped"] += 1
        if lease.generation >= self.config.max_regrants:
            self.transport.close(force=True)
            raise StageTimeout(
                f"segment {lease.work.index} hung through "
                f"{lease.generation + 1} grants of "
                f"{self.config.lease_timeout}s each",
                stage="run",
            )
        self._regrant(lease, keep_stale=True)

    def _drain_in_flight(self, leases: dict[int, Lease]) -> None:
        """Drain path: commit what finishes in the grace window, then stop."""
        self.stats["drained"] = True
        deadline = self._clock() + self.config.drain_timeout
        while leases and self._clock() < deadline:
            progressed = False
            for index in list(leases):
                outcome = self._poll_lease(leases[index])
                if outcome is not None and outcome.error is None:
                    self.journal.commit_segment(
                        index, outcome.rows, quarantine=outcome.quarantine
                    )
                    del leases[index]
                    progressed = True
                elif outcome is not None:
                    del leases[index]  # failed in-flight work: abandon
                    progressed = True
            if not progressed:
                self._sleep(self.config.poll_interval)
        self.transport.close(force=bool(leases))
        committed = len(self.journal.segments)
        total = len(self.journal.manifest["segments"])
        raise RunInterrupted(
            f"run drained: {committed}/{total} segments committed; "
            "re-run with --resume to continue",
            stage="run",
        )


# -- segment planning ---------------------------------------------------------


def plan_segments(costs: Sequence[int], segment_items: int):
    """Token-balanced contiguous segments of ~``segment_items`` items.

    The segment count is fixed by the item count alone, so the plan —
    and therefore the journal identity — does not change with
    ``workers``; balancing within that count reuses the PR 4 makespan
    planner.
    """
    if segment_items < 1:
        raise ValueError("segment_items must be >= 1")
    if not costs:
        return []
    return plan_shards(costs, max(1, math.ceil(len(costs) / segment_items)))


# -- durable run drivers ------------------------------------------------------


@dataclasses.dataclass
class DurableRunResult:
    """Rows + provenance from a journaled run."""

    payloads: list  # raw journal row payloads, corpus order
    journal: RunJournal
    stats: dict

    @property
    def pairs(self) -> list[tuple[dict, str]]:
        """``(row, status)`` pairs (rows kinds), mirroring run_resilient."""
        return [
            (payload["row"], payload["status"]) for payload in self.payloads
        ]

    @property
    def rows(self) -> list[dict]:
        return [payload["row"] for payload in self.payloads]


def _broadcast_host(host: Any, kind: str):
    if kind == KIND_PIPELINE:
        return broadcast_pipeline(host)
    if kind == KIND_EXTRACTION:
        return broadcast_extractor(host)
    return broadcast_classifier(host)


def _host_specs(host: Any) -> tuple[tuple[FaultSpec, ...], int]:
    injector = getattr(host, "fault_injector", None)
    if injector is None:
        return (), 0
    return tuple(injector.specs), injector.seed


def _run_segments(
    journal: RunJournal,
    works: list[SegmentWork],
    host: Any,
    kind: str,
    *,
    workers: int,
    config: SupervisorConfig | None,
    drain_event: threading.Event | None,
    start_method: str | None,
) -> dict:
    """Execute pending works and commit them; returns supervisor stats.

    ``workers<=1`` runs in-process and honors the drain event between
    segments; ``workers>1`` goes through the full lease-supervised
    pool. Rows kinds run sequentially on the live host (serialized
    state restores bitwise-identically, so skipping the broadcast
    round-trip cannot change output); pipeline segments reset run-scoped
    host state, so the sequential path executes them on a host restored
    from the broadcast to leave the caller's pipeline untouched.
    """
    if workers <= 1 or len(works) <= 1:
        if kind == KIND_PIPELINE:
            local = restore_pipeline(_broadcast_host(host, kind))
        else:
            local = host
        saved_injector = getattr(host, "fault_injector", None)
        try:
            for work in works:
                if drain_event is not None and drain_event.is_set():
                    raise RunInterrupted(
                        f"run drained: {len(journal.segments)}/"
                        f"{len(journal.manifest['segments'])} segments "
                        "committed; re-run with --resume to continue",
                        stage="run",
                    )
                outcome = _execute_segment(local, work)
                if outcome.error is not None:
                    raise error_from_context(outcome.error)
                journal.commit_segment(
                    work.index, outcome.rows, quarantine=outcome.quarantine
                )
        finally:
            if local is host and hasattr(host, "fault_injector"):
                host.fault_injector = saved_injector
        return {"workers": 1, "supervised": False}
    transport = PoolTransport(
        _broadcast_host(host, kind),
        workers=min(workers, len(works)),
        start_method=start_method,
    )
    supervisor = RunSupervisor(
        journal, transport, config=config, drain_event=drain_event
    )
    try:
        supervisor.run(works)
    finally:
        transport.close()
    return {
        "workers": workers,
        "supervised": True,
        **supervisor.stats,
    }


def run_durable_rows(
    host: Any,
    kind: str,
    texts: Sequence[str],
    run_dir,
    *,
    workers: int = 1,
    resume: bool = True,
    segment_items: int = DEFAULT_SEGMENT_ITEMS,
    on_error: str = "raise",
    fields: Sequence[str] | None = None,
    config: SupervisorConfig | None = None,
    fault_injector: FaultInjector | None = None,
    drain_event: threading.Event | None = None,
    start_method: str | None = None,
) -> DurableRunResult:
    """Journaled bulk inference: texts in, ``(row, status)`` pairs out.

    The durable sibling of ``TaskModel.run_resilient``: output is
    bitwise-identical to an uninterrupted (or non-durable) run no matter
    how many times the process was killed and resumed in between,
    because segments are contiguous, per-segment results equal the
    full-corpus results (packing invariance), and committed rows replay
    byte-exactly from the WAL.

    Args:
        host: a *fitted* backend — extractor (``kind="extraction"``) or
            text classifier (``kind="classification"``).
        texts: the corpus, order-significant.
        run_dir: journal directory; pass the same directory with
            ``resume=True`` to continue an interrupted run.
        fields: empty-row schema for skip/degrade (defaults to the
            host's configured fields / the classification row schema).
        fault_injector: journal-site injector (``journal_commit`` /
            ``journal_publish``) for crash testing.
        drain_event: external drain signal (see :class:`GracefulShutdown`).
    """
    texts = [str(text) for text in texts]
    if fields is None:
        if kind == KIND_CLASSIFICATION:
            fields = ("Label", "Score")
        else:
            fields = tuple(getattr(host.config, "fields", ()))
    model = getattr(host, "model", None)
    fingerprint = model.fingerprint() if model is not None else ""
    segments = plan_segments(
        [estimate_text_cost(text) for text in texts], segment_items
    )
    journal = RunJournal(run_dir, resume=resume, fault_injector=fault_injector)
    journal.begin(
        kind=kind,
        config_hash=config_fingerprint(
            kind=kind,
            fingerprint=fingerprint,
            fields=list(fields),
            on_error=on_error,
        ),
        input_digest=input_digest(texts),
        num_items=len(texts),
        segments=[(segment.start, segment.stop) for segment in segments],
    )
    run_stats: dict = {"workers": workers, "supervised": False}
    pending = set(journal.pending())
    if pending:
        base_specs, base_seed = _host_specs(host)
        works = [
            SegmentWork(
                index=segment.index,
                start=segment.start,
                stop=segment.stop,
                kind=kind,
                items=tuple(texts[segment.start : segment.stop]),
                mode=on_error,
                fields=tuple(fields),
                specs=base_specs,
                seed=shard_seed(base_seed, segment.index),
            )
            for segment in segments
            if segment.index in pending
        ]
        run_stats = _run_segments(
            journal,
            works,
            host,
            kind,
            workers=workers,
            config=config,
            drain_event=drain_event,
            start_method=start_method,
        )
    journal.mark_complete()
    return DurableRunResult(
        payloads=journal.rows(),
        journal=journal,
        stats={**journal.stats(), **run_stats},
    )


def run_durable_reports(
    pipeline: Any,
    reports: Sequence[Any],
    run_dir,
    *,
    workers: int = 1,
    resume: bool = True,
    segment_items: int = 4,
    on_error: str | None = None,
    config: SupervisorConfig | None = None,
    fault_injector: FaultInjector | None = None,
    drain_event: threading.Event | None = None,
    start_method: str | None = None,
) -> DurableRunResult:
    """Journaled GoalSpotter corpus run: reports in, record payloads out.

    Quarantine entries commit alongside their segment's records, so
    poison documents survive restarts with full typed provenance and a
    resume never retries an already-settled segment. The caller's
    ``pipeline.quarantine`` is extended with the (replayed or fresh)
    entries after the run completes.
    """
    from repro.goalspotter.pipeline import ON_ERROR_POLICIES
    from repro.runtime.errors import InputError
    from repro.runtime.resilience import QuarantineEntry

    mode = on_error if on_error is not None else pipeline.on_error
    if mode not in ON_ERROR_POLICIES:
        raise InputError(
            f"unknown on_error {mode!r}; use {ON_ERROR_POLICIES}",
            stage="pipeline",
        )
    reports = list(reports)
    segments = plan_segments(
        [estimate_report_cost(report) for report in reports], segment_items
    )
    journal = RunJournal(run_dir, resume=resume, fault_injector=fault_injector)
    journal.begin(
        kind=KIND_PIPELINE,
        config_hash=config_fingerprint(
            kind=KIND_PIPELINE,
            detector=_model_fingerprint(pipeline.detector),
            extractor=_model_fingerprint(pipeline.extractor),
            on_error=mode,
        ),
        input_digest=_reports_digest(reports),
        num_items=len(reports),
        segments=[(segment.start, segment.stop) for segment in segments],
    )
    run_stats: dict = {"workers": workers, "supervised": False}
    pending = set(journal.pending())
    if pending:
        base_specs, base_seed = _host_specs(pipeline)
        works = [
            SegmentWork(
                index=segment.index,
                start=segment.start,
                stop=segment.stop,
                kind=KIND_PIPELINE,
                items=tuple(reports[segment.start : segment.stop]),
                mode=mode,
                fields=(),
                specs=base_specs,
                seed=shard_seed(base_seed, segment.index),
            )
            for segment in segments
            if segment.index in pending
        ]
        run_stats = _run_segments(
            journal,
            works,
            pipeline,
            KIND_PIPELINE,
            workers=workers,
            config=config,
            drain_event=drain_event,
            start_method=start_method,
        )
    journal.mark_complete()
    pipeline.quarantine.extend(
        QuarantineEntry.from_dict(payload)
        for payload in journal.quarantine_payloads()
    )
    return DurableRunResult(
        payloads=journal.rows(),
        journal=journal,
        stats={**journal.stats(), **run_stats},
    )


def _model_fingerprint(owner: Any) -> str:
    model = getattr(owner, "model", None)
    if model is None or not hasattr(model, "fingerprint"):
        return ""
    return model.fingerprint()


def _reports_digest(reports: Sequence[Any]) -> str:
    """Order-sensitive content address of a report corpus."""
    parts: list[str] = []
    for report in reports:
        parts.append(
            "\x1d".join(
                [
                    report.company,
                    report.report_id,
                    str(report.reporting_year),
                ]
                + [
                    block.text
                    for page in report.pages
                    for block in page.blocks
                    if isinstance(getattr(block, "text", None), str)
                ]
            )
        )
    return input_digest(parts)
