"""Structured exception taxonomy for the fault-tolerant runtime.

Every failure the pipeline can survive is classified into one of four
:class:`ReproError` subclasses so policies (retry, degrade, skip,
quarantine) can dispatch on *what went wrong* instead of string-matching
tracebacks:

* :class:`InputError` — the caller's data is malformed (``None`` blocks,
  empty reports, absurd block lengths). Deterministic: never retried.
* :class:`ModelError` — a model stage failed (missing weights, shape
  mismatch, anything unexpected raised inside a stage). Retryable.
* :class:`NumericalError` — NaN/inf escaped a forward pass (raised by the
  opt-in guards in :mod:`repro.nn.module`). Retryable.
* :class:`StageTimeout` — a stage exhausted its deadline budget across
  retry attempts. Terminal for that stage call.

Errors carry provenance (``stage``, ``report_id``, ``page``) and, once a
:class:`~repro.runtime.resilience.RetryPolicy` has handled them, the
attempt count and per-attempt history — which is what lands in the
:class:`~repro.runtime.resilience.QuarantineQueue`.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of the runtime failure taxonomy.

    Attributes:
        stage: pipeline stage that failed (``"detect"``, ``"extract"``, ...).
        report_id: offending document, when known.
        page: offending page index within the document, when known.
        attempts: how many attempts were made before giving up (filled by
            the retry machinery).
        history: one short string per failed attempt.
        injected: True when raised by a :class:`FaultInjector` (testing).
    """

    retryable = True

    def __init__(
        self,
        message: str,
        *,
        stage: str | None = None,
        report_id: str | None = None,
        page: int | None = None,
    ) -> None:
        super().__init__(message)
        self.stage = stage
        self.report_id = report_id
        self.page = page
        self.attempts: int = 0
        self.history: list[str] = []
        self.injected: bool = False

    def context(self) -> dict:
        """JSON-ready provenance view (quarantine / logging)."""
        return {
            "error": type(self).__name__,
            "message": str(self),
            "stage": self.stage,
            "report_id": self.report_id,
            "page": self.page,
            "attempts": self.attempts,
            "history": list(self.history),
            "injected": self.injected,
        }


class InputError(ReproError):
    """Malformed caller data; deterministic, so never retried."""

    retryable = False


class ModelError(ReproError):
    """A model stage failed (wraps unexpected in-stage exceptions)."""


class NumericalError(ModelError):
    """NaN/inf detected in a forward pass (see ``repro.nn.module``)."""


class StageTimeout(ReproError):
    """A stage exhausted its per-stage deadline budget."""

    retryable = False


class TaskRegistryError(InputError):
    """The task registry rejected a lookup or registration.

    Raised by :mod:`repro.tasks` when an unknown task name is requested
    (CLI ``--task`` maps this to exit code 2 through the usual
    :class:`InputError` handling) or when a registration collides with an
    already-registered or reserved builtin task name. Deterministic — the
    registry will not change under retry.
    """


class ArtifactError(InputError):
    """A persisted artifact failed integrity verification at load time.

    Raised by every load surface (``nn.serialize.load_state``, extractor /
    CRF / tokenizer / vocabulary loads, and the checkpoint manager) when
    bytes on disk are truncated, corrupted, missing, or belong to a
    different configuration — instead of a bare ``zipfile``/``numpy``/
    ``KeyError`` escaping from deep inside a parser. Deterministic (the
    bytes will not fix themselves), so never retried; the checkpoint
    manager reacts by rolling back to the previous last-good checkpoint.

    Attributes:
        path: the offending file, when known.
        expected: expected content digest (or schema detail), when known.
        actual: actual digest observed on disk, when known.
    """

    def __init__(
        self,
        message: str,
        *,
        path: str | None = None,
        expected: str | None = None,
        actual: str | None = None,
        stage: str | None = None,
        report_id: str | None = None,
        page: int | None = None,
    ) -> None:
        super().__init__(
            message, stage=stage, report_id=report_id, page=page
        )
        self.path = path
        self.expected = expected
        self.actual = actual

    def context(self) -> dict:
        payload = super().context()
        payload.update(
            {
                "path": self.path,
                "expected": self.expected,
                "actual": self.actual,
            }
        )
        return payload


class CircuitOpenError(ModelError):
    """A stage's circuit breaker is open; the call was not attempted."""

    retryable = False


class QuantizationError(ModelError):
    """The int8 equivalence gate refused to enable quantization.

    Raised by :meth:`WeakSupervisionExtractor.enable_quantization` (and
    the CLI ``--quantize`` path) when a quantized calibration run changes
    a top label or exceeds the score-delta bound; the model is restored
    to fp32 before raising. Deterministic for fixed weights and
    calibration data, so never retried.
    """

    retryable = False


class OverloadedError(ReproError):
    """The serving engine shed this request instead of queueing it.

    Raised by :meth:`repro.serve.ServingEngine.submit` when admission
    control finds the request's priority queue at its depth bound (or the
    engine draining/stopped). Not retryable *inside* the engine — the
    whole point of load shedding is to fail fast; the caller decides
    whether to back off and resubmit.
    """

    retryable = False


class ReplicaCrashError(ModelError):
    """A serving replica died (or was chaos-killed) with work in flight.

    Raised by a crashed replica's backend proxy for every call after the
    crash instant. Not retryable *in place* — retrying on a dead replica
    can never succeed; the :class:`repro.serve.FleetRouter` instead
    re-dispatches the request to a healthy replica (the at-least-once
    failover guarantee).
    """

    retryable = False


class RunInterrupted(ReproError):
    """A durable run drained after SIGINT/SIGTERM (or an explicit drain).

    Raised *after* all in-flight work has been committed — training by
    :meth:`CheckpointManager.maybe_save` once the forced checkpoint is on
    disk, journaled extraction by the :class:`RunSupervisor` once every
    in-flight segment has either committed or been abandoned at the drain
    deadline. The journal/checkpoint left behind is a valid resume point;
    the CLI maps this to the documented partial-success exit code 4.
    Deterministic (the signal will not un-arrive), so never retried.
    """

    retryable = False


#: Short names used by the fault injector and CLI to pick an error class.
ERROR_CLASSES: dict[str, type[ReproError]] = {
    "input": InputError,
    "model": ModelError,
    "numerical": NumericalError,
    "timeout": StageTimeout,
    "overloaded": OverloadedError,
    "artifact": ArtifactError,
    "crash": ReplicaCrashError,
}

#: Taxonomy classes by their ``__name__`` — the inverse of the tag each
#: error writes into ``context()["error"]``. Used to rebuild typed errors
#: from persisted quarantine payloads when a journaled run resumes.
_TAXONOMY_BY_NAME: dict[str, type[ReproError]] = {
    cls.__name__: cls
    for cls in (
        ReproError,
        InputError,
        ModelError,
        NumericalError,
        StageTimeout,
        TaskRegistryError,
        ArtifactError,
        CircuitOpenError,
        QuantizationError,
        OverloadedError,
        ReplicaCrashError,
        RunInterrupted,
    )
}


def error_from_context(payload: dict) -> ReproError:
    """Rebuild a typed :class:`ReproError` from a ``context()`` payload.

    The inverse of :meth:`ReproError.context` for journal persistence:
    class is resolved by name (unknown names fall back to
    :class:`ReproError`), and provenance / attempt metadata is restored so
    a quarantine entry replayed from a run journal is indistinguishable
    from the live one, minus ``__cause__`` (tracebacks are not persisted).
    """
    cls = _TAXONOMY_BY_NAME.get(str(payload.get("error")), ReproError)
    error = cls.__new__(cls)
    ReproError.__init__(
        error,
        str(payload.get("message", "")),
        stage=payload.get("stage"),
        report_id=payload.get("report_id"),
        page=payload.get("page"),
    )
    error.attempts = int(payload.get("attempts", 0))
    error.history = [str(item) for item in payload.get("history", [])]
    error.injected = bool(payload.get("injected", False))
    if isinstance(error, ArtifactError):
        error.path = payload.get("path")
        error.expected = payload.get("expected")
        error.actual = payload.get("actual")
    return error


def classify_error(
    error: BaseException, *, stage: str | None = None
) -> ReproError:
    """Fold an arbitrary exception into the taxonomy.

    :class:`ReproError` instances pass through (gaining ``stage`` if they
    did not record one); ``FloatingPointError`` becomes
    :class:`NumericalError`; everything else becomes :class:`ModelError`
    with the original exception chained as ``__cause__``.
    """
    if isinstance(error, ReproError):
        if error.stage is None:
            error.stage = stage
        return error
    if isinstance(error, FloatingPointError):
        wrapped: ReproError = NumericalError(str(error), stage=stage)
    else:
        wrapped = ModelError(
            f"{type(error).__name__}: {error}", stage=stage
        )
    wrapped.__cause__ = error
    return wrapped
