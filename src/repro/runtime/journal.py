"""Crash-safe run journal for corpus extraction (DESIGN §6i).

Training became durable in PR 5 (:mod:`repro.runtime.checkpoint`); this
module gives *inference* runs the same guarantee. A :class:`RunJournal`
is a write-ahead log for one corpus run:

* ``MANIFEST.json`` — written atomically before any work starts; binds
  the journal to a config/weight fingerprint, an input digest, and the
  exact segment plan. Resuming against a different model, corpus, or
  plan is refused with :class:`ArtifactError` instead of silently mixing
  results.
* ``journal.jsonl`` — an append-only JSONL WAL. Each line is
  ``<sha256-of-body> <compact-json-body>\\n``; each committed segment is
  flushed and fsync'd before :meth:`commit_segment` returns, so a kill
  at *any* instant leaves either a fully-committed segment or no trace
  of it. A torn final line (crash mid-append) is detected by its
  checksum / missing newline and truncated away on replay; corruption
  anywhere earlier is a hard :class:`ArtifactError`.

Segment bodies carry the result rows themselves plus a content-addressed
digest, so replay both restores the rows and re-verifies them.  Row
payloads are encoded compactly but **without** key sorting — insertion
order round-trips, and Python's shortest-repr float coding means a
replayed row is byte-identical to the freshly computed one.  That is the
foundation of the tentpole guarantee: resume output is bitwise-identical
to an uninterrupted run.

Commits are idempotent first-write-wins (the PR 7 at-least-once
pattern): a reaped worker's late duplicate commit is discarded after a
digest cross-check, which is what lets the :class:`RunSupervisor`
re-grant leases without double-counting results.

Crash sites for the chaos tests: ``journal_commit`` (before anything is
written) and ``journal_publish`` (after the OS write, before fsync).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from pathlib import Path
from typing import Iterable, Sequence

from repro.runtime.checkpoint import atomic_write_json, fsync_dir, read_json
from repro.runtime.errors import ArtifactError
from repro.runtime.resilience import FaultInjector

__all__ = [
    "JOURNAL_NAME",
    "JOURNAL_SCHEMA_VERSION",
    "JournalSegment",
    "MANIFEST_NAME",
    "RunJournal",
    "input_digest",
    "rows_digest",
]

JOURNAL_SCHEMA_VERSION = 1
MANIFEST_NAME = "MANIFEST.json"
JOURNAL_NAME = "journal.jsonl"


def _canonical_bytes(payload: object) -> bytes:
    """Compact JSON bytes preserving dict insertion order.

    No ``sort_keys``: row dicts must round-trip in their original key
    order so replayed output is byte-identical to a live run.
    """
    return json.dumps(payload, separators=(",", ":")).encode("utf-8")


def rows_digest(rows: Sequence[object]) -> str:
    """Content address of a segment's result rows."""
    return hashlib.sha256(_canonical_bytes(list(rows))).hexdigest()


def input_digest(texts: Iterable[str]) -> str:
    """Content address of the run's input corpus (order-sensitive)."""
    hasher = hashlib.sha256()
    for text in texts:
        data = text.encode("utf-8")
        hasher.update(str(len(data)).encode("ascii"))
        hasher.update(b":")
        hasher.update(data)
    return hasher.hexdigest()


@dataclasses.dataclass(frozen=True)
class JournalSegment:
    """One durably committed unit of work."""

    index: int
    start: int
    stop: int
    digest: str
    rows: tuple
    quarantine: tuple


class RunJournal:
    """Append-only, checksummed WAL of per-segment completion.

    Args:
        directory: run directory (created if missing); holds
            ``MANIFEST.json`` and ``journal.jsonl``.
        resume: when False, any existing journal/manifest in the
            directory is wiped at :meth:`begin` instead of replayed.
        fault_injector: optional injector for the ``journal_commit`` /
            ``journal_publish`` crash sites.

    Counters (``stats()``): ``commits`` (segments durably appended this
    process), ``duplicate_commits`` (idempotent re-commits discarded),
    ``replayed_segments`` (restored from disk at begin), plus
    ``truncated_tail`` when a torn final line was cut away.
    """

    def __init__(
        self,
        directory: str | Path,
        *,
        resume: bool = True,
        fault_injector: FaultInjector | None = None,
    ) -> None:
        self.directory = Path(directory)
        self.resume = resume
        self.fault_injector = fault_injector
        self.manifest: dict | None = None
        self.segments: dict[int, JournalSegment] = {}
        self.complete = False
        self.result_digest: str | None = None
        self.commits = 0
        self.duplicate_commits = 0
        self.replayed_segments = 0
        self.truncated_tail = False

    # -- paths ---------------------------------------------------------------

    @property
    def manifest_path(self) -> Path:
        return self.directory / MANIFEST_NAME

    @property
    def journal_path(self) -> Path:
        return self.directory / JOURNAL_NAME

    # -- lifecycle -----------------------------------------------------------

    def begin(
        self,
        *,
        kind: str,
        config_hash: str,
        input_digest: str,
        num_items: int,
        segments: Sequence[tuple[int, int]],
        extra: dict | None = None,
    ) -> None:
        """Bind the journal to a run identity and replay committed work.

        First call in a fresh directory writes the manifest atomically;
        a resume call verifies the on-disk manifest matches (config
        hash, input digest, item count, and the exact segment plan) and
        replays ``journal.jsonl``. Any mismatch — resuming with a
        retrained model, an edited corpus, or a different segmenting —
        raises :class:`ArtifactError` rather than mixing results.
        """
        self.directory.mkdir(parents=True, exist_ok=True)
        manifest = {
            "schema_version": JOURNAL_SCHEMA_VERSION,
            "kind": kind,
            "config_hash": config_hash,
            "input_digest": input_digest,
            "num_items": int(num_items),
            "segments": [[int(s), int(e)] for s, e in segments],
            "extra": dict(extra or {}),
        }
        if not self.resume:
            self._wipe()
        if self.manifest_path.exists():
            on_disk = read_json(self.manifest_path)
            if not isinstance(on_disk, dict):
                raise ArtifactError(
                    "run manifest is not a JSON object",
                    path=str(self.manifest_path),
                )
            for key, value in manifest.items():
                if key == "extra":
                    continue
                if on_disk.get(key) != value:
                    raise ArtifactError(
                        f"run manifest mismatch on {key!r}: journal was "
                        f"written for {on_disk.get(key)!r}, resume "
                        f"requested {value!r}",
                        path=str(self.manifest_path),
                        expected=str(value),
                        actual=str(on_disk.get(key)),
                    )
            self.manifest = on_disk
        else:
            atomic_write_json(self.manifest_path, manifest)
            self.manifest = manifest
        self._replay()

    def _wipe(self) -> None:
        for path in (self.journal_path, self.manifest_path):
            if path.exists():
                os.unlink(path)
        fsync_dir(self.directory)
        self.segments.clear()
        self.complete = False
        self.result_digest = None

    # -- replay --------------------------------------------------------------

    def _replay(self) -> None:
        self.segments.clear()
        self.complete = False
        self.result_digest = None
        if not self.journal_path.exists():
            return
        raw = self.journal_path.read_bytes()
        good_end = 0
        offset = 0
        bodies: list[dict] = []
        while offset < len(raw):
            newline = raw.find(b"\n", offset)
            if newline < 0:
                # Torn tail: the process died mid-append. Everything up
                # to ``good_end`` is intact; cut the partial line away.
                self._truncate(good_end)
                break
            line = raw[offset:newline]
            body = self._decode_line(line)
            if body is None:
                if newline == len(raw) - 1:
                    # Checksum-failed *final* line: also a torn write
                    # (e.g. the tail of a line from a dead page cache).
                    self._truncate(good_end)
                    break
                raise ArtifactError(
                    "run journal corrupted mid-file (checksum mismatch "
                    f"at byte {offset})",
                    path=str(self.journal_path),
                )
            bodies.append(body)
            offset = newline + 1
            good_end = offset
        for body in bodies:
            self._apply(body)
        self.replayed_segments = len(self.segments)

    def _decode_line(self, line: bytes) -> dict | None:
        parts = line.split(b" ", 1)
        if len(parts) != 2:
            return None
        digest, body = parts
        if hashlib.sha256(body).hexdigest().encode("ascii") != digest:
            return None
        try:
            payload = json.loads(body)
        except ValueError:
            return None
        return payload if isinstance(payload, dict) else None

    def _truncate(self, good_end: int) -> None:
        self.truncated_tail = True
        with open(self.journal_path, "r+b") as handle:
            handle.truncate(good_end)
            handle.flush()
            os.fsync(handle.fileno())

    def _apply(self, body: dict) -> None:
        entry_type = body.get("type")
        if entry_type == "segment":
            index = int(body["index"])
            self._check_bounds(index, int(body["start"]), int(body["stop"]))
            segment = JournalSegment(
                index=index,
                start=int(body["start"]),
                stop=int(body["stop"]),
                digest=str(body["digest"]),
                rows=tuple(body["rows"]),
                quarantine=tuple(body.get("quarantine", [])),
            )
            if rows_digest(segment.rows) != segment.digest:
                raise ArtifactError(
                    f"segment {index} rows do not match their recorded "
                    "digest",
                    path=str(self.journal_path),
                    expected=segment.digest,
                    actual=rows_digest(segment.rows),
                )
            if index in self.segments:
                # Late duplicate from a reaped worker: first write wins.
                self.duplicate_commits += 1
                return
            self.segments[index] = segment
        elif entry_type == "complete":
            expected = self._result_digest()
            if len(self.segments) != self._num_segments():
                raise ArtifactError(
                    "run journal marked complete with "
                    f"{len(self.segments)}/{self._num_segments()} "
                    "segments committed",
                    path=str(self.journal_path),
                )
            if body.get("result_digest") != expected:
                raise ArtifactError(
                    "run journal completion digest mismatch",
                    path=str(self.journal_path),
                    expected=expected,
                    actual=str(body.get("result_digest")),
                )
            self.complete = True
            self.result_digest = expected
        else:
            raise ArtifactError(
                f"unknown journal entry type {entry_type!r}",
                path=str(self.journal_path),
            )

    def _check_bounds(self, index: int, start: int, stop: int) -> None:
        plan = (self.manifest or {}).get("segments", [])
        if index < 0 or index >= len(plan):
            raise ArtifactError(
                f"journal segment index {index} outside the manifest "
                f"plan of {len(plan)} segments",
                path=str(self.journal_path),
            )
        if plan[index] != [start, stop]:
            raise ArtifactError(
                f"journal segment {index} bounds [{start}, {stop}] do "
                f"not match the manifest plan {plan[index]}",
                path=str(self.journal_path),
            )

    # -- commits -------------------------------------------------------------

    def commit_segment(
        self,
        index: int,
        rows: Sequence[object],
        *,
        quarantine: Sequence[dict] = (),
    ) -> bool:
        """Durably append one finished segment; returns False on a dupe.

        The entry is checksummed, appended, flushed, and fsync'd before
        this returns — after that, no crash can lose it. Re-committing
        an index already on disk is a no-op (first write wins); a
        re-execution producing *different* bytes for the same segment
        would break the bitwise guarantee and raises.
        """
        if self.manifest is None:
            raise ArtifactError("commit_segment before begin()")
        if self.fault_injector is not None:
            self.fault_injector.check("journal_commit")
        segment = JournalSegment(
            index=int(index),
            start=int(self.manifest["segments"][index][0]),
            stop=int(self.manifest["segments"][index][1]),
            digest=rows_digest(rows),
            rows=tuple(rows),
            quarantine=tuple(quarantine),
        )
        existing = self.segments.get(segment.index)
        if existing is not None:
            if existing.digest != segment.digest:
                raise ArtifactError(
                    f"segment {index} re-commit produced different "
                    "results than the committed ones",
                    path=str(self.journal_path),
                    expected=existing.digest,
                    actual=segment.digest,
                )
            self.duplicate_commits += 1
            return False
        self._append(
            {
                "type": "segment",
                "index": segment.index,
                "start": segment.start,
                "stop": segment.stop,
                "digest": segment.digest,
                "rows": list(segment.rows),
                "quarantine": list(segment.quarantine),
            }
        )
        self.segments[segment.index] = segment
        self.commits += 1
        return True

    def mark_complete(self) -> None:
        """Append the completion record once every segment is committed."""
        if self.complete:
            return
        if len(self.segments) != self._num_segments():
            raise ArtifactError(
                "cannot mark run complete: "
                f"{len(self.segments)}/{self._num_segments()} segments "
                "committed"
            )
        digest = self._result_digest()
        self._append({"type": "complete", "result_digest": digest})
        self.complete = True
        self.result_digest = digest

    def _append(self, body: dict) -> None:
        data = _canonical_bytes(body)
        line = (
            hashlib.sha256(data).hexdigest().encode("ascii")
            + b" "
            + data
            + b"\n"
        )
        created = not self.journal_path.exists()
        with open(self.journal_path, "ab") as handle:
            handle.write(line)
            handle.flush()
            if self.fault_injector is not None:
                # Crash window between the OS write and the fsync: the
                # bytes may or may not survive — replay's torn-tail
                # handling must cope with both.
                self.fault_injector.check("journal_publish")
            os.fsync(handle.fileno())
        if created:
            fsync_dir(self.directory)

    # -- views ---------------------------------------------------------------

    def _num_segments(self) -> int:
        return len((self.manifest or {}).get("segments", []))

    def _result_digest(self) -> str:
        hasher = hashlib.sha256()
        for index in sorted(self.segments):
            hasher.update(self.segments[index].digest.encode("ascii"))
        return hasher.hexdigest()

    def pending(self) -> list[int]:
        """Segment indices not yet committed, in execution order."""
        return [
            index
            for index in range(self._num_segments())
            if index not in self.segments
        ]

    def rows(self) -> list:
        """All rows in corpus order; requires every segment committed."""
        if self.pending():
            raise ArtifactError(
                f"run incomplete: segments {self.pending()} not committed"
            )
        merged: list = []
        for index in sorted(self.segments):
            merged.extend(self.segments[index].rows)
        return merged

    def quarantine_payloads(self) -> list[dict]:
        """Persisted quarantine entries, in segment order."""
        merged: list[dict] = []
        for index in sorted(self.segments):
            merged.extend(self.segments[index].quarantine)
        return merged

    def stats(self) -> dict:
        return {
            "segments_total": self._num_segments(),
            "segments_committed": len(self.segments),
            "commits": self.commits,
            "duplicate_commits": self.duplicate_commits,
            "replayed_segments": self.replayed_segments,
            "truncated_tail": self.truncated_tail,
            "complete": self.complete,
        }
