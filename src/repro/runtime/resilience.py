"""Fault-tolerant stage execution: retries, breakers, quarantine, chaos.

The deployment story (Tables 5-7) pushes tens of thousands of heterogeneous
report pages through detect -> extract -> store. At that scale one malformed
block or NaN logit must not abort the batch. This module provides the
building blocks the pipeline wires together:

* :class:`RetryPolicy` — seeded exponential backoff with deterministic
  jitter and a per-stage deadline budget (:class:`~repro.runtime.errors.StageTimeout`);
* :class:`CircuitBreaker` — per-stage closed/open/half-open breaker so a
  persistently failing stage stops being hammered;
* :func:`run_stage` — executes one stage callable under a policy, breaker
  and fault injector, classifying foreign exceptions into the taxonomy and
  attaching attempt history;
* :class:`QuarantineQueue` — failed documents with error, stage and retry
  history, instead of a dead batch;
* :class:`FaultInjector` — deterministic (seeded, rate- or nth-call
  targeted) error injection into named stages, for the chaos suite;
* :func:`validate_report` / :func:`sanitize_report` — pipeline-entry input
  validation with report/page provenance.

Everything is deterministic under a fixed seed: backoff jitter comes from a
seeded per-stage RNG, and injection decisions from a seeded per-spec RNG
advanced once per call.
"""

from __future__ import annotations

import dataclasses
import threading
import time
from collections.abc import Callable, Iterable, Iterator, Sequence

import numpy as np

from repro.datasets.reports import Page, SustainabilityReport, TextBlock
from repro.runtime.errors import (
    ERROR_CLASSES,
    CircuitOpenError,
    InputError,
    ReproError,
    classify_error,
)
from repro.runtime.profiling import PerfCounters


def _stage_rng(seed: int, stage: str) -> np.random.Generator:
    """A deterministic RNG keyed on (seed, stage name)."""
    return np.random.default_rng([seed & 0x7FFFFFFF, *stage.encode("utf-8")])


# -- retry policy -----------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class RetryPolicy:
    """Seeded exponential backoff with a per-stage deadline budget.

    ``delays(stage)`` is a pure function of ``(policy, stage)``: the jitter
    RNG is reseeded per call, so the same policy produces the same backoff
    schedule for the same stage every time — retries are reproducible.

    Attributes:
        max_retries: retry attempts *after* the first try (0 = no retries).
        base_delay: first backoff delay in seconds.
        max_delay: cap on any single delay.
        jitter: fraction of each delay drawn uniformly at random on top of
            the deterministic exponential (0 disables jitter).
        deadline: wall-clock budget in seconds for one stage call across
            all of its attempts (None = unbounded); exceeding it raises
            :class:`~repro.runtime.errors.StageTimeout`.
        seed: jitter RNG seed.
    """

    max_retries: int = 2
    base_delay: float = 0.01
    max_delay: float = 1.0
    jitter: float = 0.5
    deadline: float | None = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be non-negative")
        if self.jitter < 0:
            raise ValueError("jitter must be non-negative")
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError("deadline must be positive")

    def delays(self, stage: str = "") -> list[float]:
        """The deterministic backoff schedule for ``stage``."""
        rng = _stage_rng(self.seed, stage)
        delays: list[float] = []
        for attempt in range(self.max_retries):
            base = min(self.base_delay * (2.0**attempt), self.max_delay)
            delays.append(base * (1.0 + self.jitter * float(rng.random())))
        return delays


# -- circuit breaker --------------------------------------------------------

CLOSED, OPEN, HALF_OPEN = "closed", "open", "half_open"


class CircuitBreaker:
    """Per-stage circuit breaker with closed/open/half-open states.

    Closed: calls pass through; ``failure_threshold`` *consecutive*
    failures trip the breaker open. Open: calls fail fast with
    :class:`~repro.runtime.errors.CircuitOpenError` until ``recovery_time``
    seconds pass, then one trial call is admitted (half-open). A half-open
    success closes the breaker; a half-open failure re-opens it.

    ``clock`` is injectable for deterministic tests (defaults to
    ``time.monotonic``). Thread-safe: serving workers share one breaker
    per stage, so state transitions happen under an internal lock.
    """

    def __init__(
        self,
        failure_threshold: int = 5,
        recovery_time: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold <= 0:
            raise ValueError("failure_threshold must be positive")
        if recovery_time < 0:
            raise ValueError("recovery_time must be non-negative")
        self.failure_threshold = failure_threshold
        self.recovery_time = recovery_time
        self._clock = clock
        self._lock = threading.RLock()
        self._state = CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.RLock()

    @property
    def state(self) -> str:
        # An open breaker whose cooldown elapsed is reported (and behaves)
        # as half-open: the next allow() admits one trial call.
        with self._lock:
            if (
                self._state == OPEN
                and self._clock() - self._opened_at >= self.recovery_time
            ):
                return HALF_OPEN
            return self._state

    def allow(self) -> bool:
        """Whether a call may proceed right now."""
        with self._lock:
            state = self.state
            if state == CLOSED:
                return True
            if state == HALF_OPEN:
                self._state = HALF_OPEN
                return True
            return False

    def record_success(self) -> None:
        with self._lock:
            self._state = CLOSED
            self._consecutive_failures = 0

    def record_failure(self) -> None:
        with self._lock:
            if self._state == HALF_OPEN:
                self._trip()
                return
            self._consecutive_failures += 1
            if self._consecutive_failures >= self.failure_threshold:
                self._trip()

    def _trip(self) -> None:
        with self._lock:
            self._state = OPEN
            self._consecutive_failures = 0
            self._opened_at = self._clock()

    def reset(self) -> None:
        with self._lock:
            self._state = CLOSED
            self._consecutive_failures = 0
            self._opened_at = 0.0


# -- fault injection ---------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class FaultSpec:
    """One injection rule: which stage, which error, how often.

    ``rate`` triggers Bernoulli(rate) per call from a seeded per-spec RNG;
    ``nth_calls`` triggers on exact 1-based call ordinals of the stage.
    Either (or both) may be set; both are deterministic under the
    injector's seed.
    """

    stage: str
    error: str = "model"
    rate: float = 0.0
    nth_calls: tuple[int, ...] = ()
    message: str = ""

    def __post_init__(self) -> None:
        if self.error not in ERROR_CLASSES:
            raise ValueError(
                f"unknown error kind {self.error!r}; "
                f"use {sorted(ERROR_CLASSES)}"
            )
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError("rate must be in [0, 1]")
        if any(n <= 0 for n in self.nth_calls):
            raise ValueError("nth_calls are 1-based ordinals")


class FaultInjector:
    """Deterministic error injection into named pipeline stages.

    Stages call :meth:`check` on entry (or wrap callables via
    :meth:`wrap`); when a spec triggers, the corresponding taxonomy error
    is raised with ``injected=True``. Same seed + same call sequence =>
    same fault pattern, which is what makes the chaos suite reproducible.

    Established crash sites: ``tokenize``/``forward`` (extract_batch),
    ``store``/``store_commit`` (atomic record stores), ``save``/
    ``save_commit`` (extractor directory saves), and — for the durable
    training runtime — ``train_step`` (every optimizer-step boundary),
    ``checkpoint`` (checkpoint save entry), and ``checkpoint_commit``
    (between a fully-written temp checkpoint and its publication).
    Durable corpus runs add ``journal_commit`` (segment-commit entry,
    before anything reaches the WAL) and ``journal_publish`` (between
    the journal append and its fsync — the torn-tail window).

    Fleet-level sites (checked by :class:`repro.serve.FleetRouter`):
    ``replica_crash`` (at dispatch — the selected replica dies mid-flight
    and its in-flight work must fail over), ``replica_stall`` (the
    selected replica stops making progress and takes a health strike
    instead of the request), and ``swap_abort`` (between a fully-loaded,
    gate-passed new model generation and the atomic cutover — the swap
    must abort and leave the old fleet serving).
    """

    def __init__(self, specs: Sequence[FaultSpec], seed: int = 0) -> None:
        self.specs = tuple(specs)
        self.seed = seed
        self._lock = threading.Lock()
        self._calls: dict[str, int] = {}
        self._injected: dict[str, int] = {}
        self._rngs: dict[int, np.random.Generator] = {}
        self.reset()

    def __getstate__(self) -> dict:
        # Only the configuration crosses a process boundary; the receiver
        # starts with fresh call counters and RNG streams (the parallel
        # runtime reseeds per shard via :func:`shard_injector`).
        return {"specs": self.specs, "seed": self.seed}

    def __setstate__(self, state: dict) -> None:
        self.specs = state["specs"]
        self.seed = state["seed"]
        self._lock = threading.Lock()
        self.reset()

    def reset(self) -> None:
        """Restart call counters and RNG streams (same pattern replays)."""
        with self._lock:
            self._calls = {}
            self._injected = {}
            self._rngs = {
                index: _stage_rng(self.seed + index, spec.stage)
                for index, spec in enumerate(self.specs)
            }

    def calls(self, stage: str) -> int:
        """How many times ``stage`` checked in (including faulted calls)."""
        with self._lock:
            return self._calls.get(stage, 0)

    def injected(self, stage: str) -> int:
        """How many faults were injected into ``stage``."""
        with self._lock:
            return self._injected.get(stage, 0)

    def check(
        self,
        stage: str,
        *,
        report_id: str | None = None,
        page: int | None = None,
    ) -> None:
        """Count a call of ``stage`` and raise if any spec triggers.

        Thread-safe: concurrent serving workers check in on the same
        stage; call ordinals and RNG draws advance atomically (which call
        of a concurrent pair gets a given ordinal is scheduler-dependent,
        but the fault *pattern over ordinals* stays deterministic).
        """
        with self._lock:
            ordinal = self._calls.get(stage, 0) + 1
            self._calls[stage] = ordinal
            triggered: FaultSpec | None = None
            for index, spec in enumerate(self.specs):
                if spec.stage != stage:
                    continue
                # Always advance the rate RNG so the draw sequence depends
                # only on the stage call ordinal, not on which call
                # triggered.
                draw = (
                    float(self._rngs[index].random())
                    if spec.rate > 0
                    else 1.0
                )
                if triggered is None and (
                    ordinal in spec.nth_calls or draw < spec.rate
                ):
                    triggered = spec
                    self._injected[stage] = (
                        self._injected.get(stage, 0) + 1
                    )
        if triggered is not None:
            error = ERROR_CLASSES[triggered.error](
                triggered.message
                or f"injected {triggered.error} fault (call #{ordinal})",
                stage=stage,
                report_id=report_id,
                page=page,
            )
            error.injected = True
            raise error

    def wrap(self, stage: str, fn: Callable) -> Callable:
        """A callable that checks in with the injector, then calls ``fn``."""

        def wrapped(*args, **kwargs):
            self.check(stage)
            return fn(*args, **kwargs)

        return wrapped


# -- quarantine --------------------------------------------------------------


@dataclasses.dataclass
class QuarantineEntry:
    """One irrecoverably failed document and why it failed."""

    report_id: str
    company: str
    stage: str
    error: ReproError

    def as_dict(self) -> dict:
        payload = self.error.context()
        payload.update(
            {
                "report_id": self.report_id,
                "company": self.company,
                "stage": self.stage,
            }
        )
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "QuarantineEntry":
        """Rebuild an entry persisted by :meth:`as_dict`.

        The run-journal replay path: quarantined documents survive
        restarts with their full typed failure provenance (class,
        message, attempts, history) instead of being retried — minus the
        original ``__cause__`` traceback, which is not persisted.
        ``entry.from_dict(entry.as_dict()).as_dict()`` round-trips
        exactly.
        """
        from repro.runtime.errors import error_from_context

        return cls(
            report_id=str(payload.get("report_id") or ""),
            company=str(payload.get("company") or ""),
            stage=str(payload.get("stage") or ""),
            error=error_from_context(payload),
        )


class QuarantineQueue:
    """Documents the pipeline gave up on, with full failure provenance."""

    def __init__(self) -> None:
        self._entries: list[QuarantineEntry] = []

    def put(
        self, report: SustainabilityReport, stage: str, error: ReproError
    ) -> None:
        self._entries.append(
            QuarantineEntry(
                report_id=report.report_id,
                company=report.company,
                stage=stage,
                error=error,
            )
        )

    def extend(self, entries: Iterable[QuarantineEntry]) -> None:
        """Append already-built entries (shard results merging back)."""
        self._entries.extend(entries)

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[QuarantineEntry]:
        return iter(self._entries)

    def report_ids(self) -> list[str]:
        return [entry.report_id for entry in self._entries]

    def as_dicts(self) -> list[dict]:
        """JSON-ready dump (what an operator would page through)."""
        return [entry.as_dict() for entry in self._entries]

    def drain(self) -> list[QuarantineEntry]:
        """Return and clear all entries."""
        entries, self._entries = self._entries, []
        return entries


# -- stage execution ---------------------------------------------------------


def run_stage(
    fn: Callable[[], object],
    *,
    stage: str,
    policy: RetryPolicy | None = None,
    breaker: CircuitBreaker | None = None,
    injector: FaultInjector | None = None,
    counters: PerfCounters | None = None,
    report_id: str | None = None,
    clock: Callable[[], float] = time.monotonic,
    sleep: Callable[[float], None] = time.sleep,
):
    """Run one stage callable under retry/breaker/injection policies.

    Foreign exceptions are classified into the taxonomy
    (:func:`~repro.runtime.errors.classify_error`); non-retryable errors
    and exhausted retries re-raise with ``attempts``/``history`` filled.
    The ``deadline`` budget covers all attempts of this one call; blowing
    it raises :class:`~repro.runtime.errors.StageTimeout` carrying the
    history so far.
    """
    policy = policy or RetryPolicy(max_retries=0)
    delays = policy.delays(stage)
    history: list[str] = []
    started = clock()
    for attempt in range(policy.max_retries + 1):
        if breaker is not None and not breaker.allow():
            error: ReproError = CircuitOpenError(
                f"circuit breaker open for stage {stage!r}",
                stage=stage,
                report_id=report_id,
            )
            error.attempts = attempt
            error.history = history
            raise error
        try:
            if injector is not None:
                injector.check(stage, report_id=report_id)
            result = fn()
        except Exception as raw:
            wrapped = classify_error(raw, stage=stage)
            if wrapped.report_id is None:
                wrapped.report_id = report_id
            history.append(f"{type(wrapped).__name__}: {wrapped}")
            if breaker is not None:
                breaker.record_failure()
            if counters is not None:
                counters.add("stage_failures")
            out_of_attempts = attempt >= policy.max_retries
            if not wrapped.retryable or out_of_attempts:
                wrapped.attempts = attempt + 1
                wrapped.history = history
                raise wrapped from wrapped.__cause__
            elapsed = clock() - started
            delay = delays[attempt]
            if policy.deadline is not None and (
                elapsed + delay > policy.deadline
            ):
                timeout = _timeout_error(
                    stage, policy.deadline, attempt + 1, history, report_id
                )
                raise timeout from wrapped
            if counters is not None:
                counters.add("retries")
            if delay > 0:
                sleep(delay)
        else:
            if breaker is not None:
                breaker.record_success()
            return result
    raise AssertionError("unreachable")  # pragma: no cover


def _timeout_error(
    stage: str,
    deadline: float,
    attempts: int,
    history: list[str],
    report_id: str | None,
):
    from repro.runtime.errors import StageTimeout

    error = StageTimeout(
        f"stage {stage!r} exhausted its {deadline:.3f}s deadline "
        f"after {attempts} attempt(s)",
        stage=stage,
        report_id=report_id,
    )
    error.attempts = attempts
    error.history = history
    return error


# -- input validation --------------------------------------------------------

#: Blocks longer than this are considered corrupt input (a well-formed
#: report block is a paragraph, not a megabyte of extraction residue).
MAX_BLOCK_CHARS = 50_000


def validate_report(
    report: SustainabilityReport, max_block_chars: int = MAX_BLOCK_CHARS
) -> None:
    """Strict pipeline-entry validation; raises :class:`InputError`.

    Rejects empty reports (no pages, or no blocks on any page), ``None``
    or non-``str`` block texts, and absurd block lengths — each error
    carries report/page provenance instead of surfacing as a deep
    ``AttributeError`` inside the tokenizer.
    """
    if not isinstance(report, SustainabilityReport):
        raise InputError(
            f"expected SustainabilityReport, got {type(report).__name__}",
            stage="validate",
        )
    if not report.pages:
        raise InputError(
            "report has no pages",
            stage="validate",
            report_id=report.report_id,
        )
    saw_block = False
    for page_index, page in enumerate(report.pages):
        for block in page.blocks:
            saw_block = True
            text = getattr(block, "text", None)
            if not isinstance(text, str):
                raise InputError(
                    f"block text must be str, got {type(text).__name__}",
                    stage="validate",
                    report_id=report.report_id,
                    page=page_index,
                )
            if len(text) > max_block_chars:
                raise InputError(
                    f"block of {len(text)} chars exceeds the "
                    f"{max_block_chars}-char limit",
                    stage="validate",
                    report_id=report.report_id,
                    page=page_index,
                )
    if not saw_block:
        raise InputError(
            "report has no text blocks",
            stage="validate",
            report_id=report.report_id,
        )


def sanitize_report(
    report: SustainabilityReport,
    max_block_chars: int = MAX_BLOCK_CHARS,
    counters: PerfCounters | None = None,
) -> SustainabilityReport:
    """Lenient pipeline-entry cleanup for skip/degrade modes.

    Drops ``None``/non-``str`` blocks, truncates absurdly long ones, and
    returns the report unchanged (same object) when nothing needed fixing.
    Dropped/truncated counts accumulate into ``counters`` as
    ``sanitized_blocks``.
    """
    dirty = False
    pages: list[Page] = []
    sanitized = 0
    for page in report.pages:
        blocks: list[TextBlock] = []
        for block in page.blocks:
            text = getattr(block, "text", None)
            if not isinstance(text, str) or not text.strip():
                sanitized += 1
                dirty = True
                continue
            if len(text) > max_block_chars:
                block = dataclasses.replace(
                    block, text=text[:max_block_chars]
                )
                sanitized += 1
                dirty = True
            blocks.append(block)
        pages.append(Page(blocks=blocks))
    if counters is not None and sanitized:
        counters.add("sanitized_blocks", sanitized)
    if not dirty:
        return report
    return SustainabilityReport(
        company=report.company,
        report_id=report.report_id,
        pages=pages,
        reporting_year=getattr(report, "reporting_year", None),
    )
