"""Durable training: atomic, checksummed, resumable checkpoints.

The pipeline is retrained continuously as experts add weak annotations
(the GoalSpotter loop, paper Section 6); a long-lived deployment cannot
afford to lose an MLM pre-train or fine-tune run to a crash, nor to load
a truncated model artifact silently. This module provides the durability
substrate the three training loops (:func:`repro.models.training.fit_token_classifier`,
:func:`repro.models.mlm.pretrain_mlm`, :func:`repro.models.distill.distill_encoder`)
thread their step boundaries through:

* atomic file/dir primitives (:func:`atomic_write_bytes`,
  :func:`atomic_write_json`, :func:`replace_dir`, :func:`fsync_dir`) —
  temp sibling + fsync + ``os.replace``, so readers never observe a
  half-written artifact;
* a per-directory ``manifest.json`` (schema version, config hash, SHA-256
  + byte size per artifact) written last, verified first
  (:func:`write_manifest` / :func:`verify_manifest`);
* :class:`CheckpointManager` — step-boundary checkpoints capturing model
  ``state_dict``, optimizer moments/step, epoch/step counters, loss
  accumulators, and the *full* RNG state (training-loop generator plus
  every dropout generator in the model tree), with a ``LATEST``
  last-good pointer, retention pruning, and checksum-verified loading
  that rolls back to the previous good checkpoint on corruption.

The headline guarantee is **resume-equals-uninterrupted, bitwise**: kill
a run at any step boundary (the manager checks the ``train_step`` /
``checkpoint`` / ``checkpoint_commit`` fault-injection sites), resume
from the latest good checkpoint, and the final weights, optimizer
moments, and loss history are bit-for-bit identical to the run that was
never interrupted. The mechanism: a checkpoint stores three RNG
snapshots — ``setup`` (before any data-plan draws), ``epoch_start``
(before the current epoch's shuffle/masking draws), and ``now`` (the
step boundary, covering dropout draws) — so a resumed loop can re-derive
the epoch's batch plan from ``epoch_start``, then fast-forward the
generators to ``now`` and continue exactly where the dead run stopped.
"""

from __future__ import annotations

import dataclasses
import hashlib
import io
import json
import os
import shutil
from pathlib import Path
from typing import TYPE_CHECKING

import numpy as np

from repro.nn.serialize import (
    file_sha256,
    load_optimizer_state,
    module_rngs,
    optimizer_state,
    rng_state,
    set_rng_state,
)
from repro.runtime.errors import ArtifactError, RunInterrupted

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.nn.module import Module
    from repro.runtime.resilience import FaultInjector

__all__ = [
    "CheckpointManager",
    "MANIFEST_NAME",
    "SCHEMA_VERSION",
    "TrainState",
    "atomic_write_bytes",
    "atomic_write_json",
    "capture_rng_states",
    "config_fingerprint",
    "fsync_dir",
    "read_json",
    "replace_dir",
    "restore_rng_states",
    "verify_manifest",
    "write_manifest",
]

SCHEMA_VERSION = 1
MANIFEST_NAME = "manifest.json"
LATEST_NAME = "LATEST"

_MODEL_ARTIFACT = "model.npz"
_OPTIMIZER_ARTIFACT = "optimizer.npz"
_LOSSES_ARTIFACT = "losses.npz"
_STATE_ARTIFACT = "state.json"


# -- atomic primitives -------------------------------------------------------


def fsync_dir(path: str | Path) -> None:
    """fsync a directory so a rename inside it is durable, not just atomic."""
    fd = os.open(str(path), os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def atomic_write_bytes(path: str | Path, payload: bytes) -> None:
    """Write ``payload`` to ``path`` via temp sibling + fsync + rename.

    A crash at any point leaves either the old content or the new one —
    never a truncated mix.
    """
    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as handle:
        handle.write(payload)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    fsync_dir(path.parent)


def atomic_write_json(path: str | Path, payload: object) -> None:
    """Atomically write ``payload`` as deterministic, sorted-key JSON."""
    atomic_write_bytes(path, _json_bytes(payload))


def _json_bytes(payload: object) -> bytes:
    return (json.dumps(payload, indent=2, sort_keys=True) + "\n").encode(
        "utf-8"
    )


def _npz_bytes(arrays: dict) -> bytes:
    buffer = io.BytesIO()
    np.savez(buffer, **arrays)
    return buffer.getvalue()


def read_json(path: str | Path) -> object:
    """Read a JSON artifact; unreadable/unparseable raises ArtifactError."""
    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as error:
        raise ArtifactError(
            f"cannot read artifact: {error}", path=str(path)
        ) from error
    try:
        return json.loads(text)
    except ValueError as error:
        raise ArtifactError(
            f"artifact is not valid JSON ({error})", path=str(path)
        ) from error


def replace_dir(tmp_dir: str | Path, final_dir: str | Path) -> None:
    """Swap a fully-written sibling temp directory into place.

    When ``final_dir`` does not exist this is a single atomic rename.
    When it does, the old directory is moved aside to ``<name>.old``
    first, so at every instant the path holds either the complete old
    tree, the complete new tree, or nothing — never a half-written mix
    (a crash in the no-directory window surfaces as "missing", which
    every load path reports as a typed error rather than garbage).
    """
    tmp_dir = Path(tmp_dir)
    final_dir = Path(final_dir)
    backup = final_dir.with_name(final_dir.name + ".old")
    if backup.exists():
        shutil.rmtree(backup)
    if final_dir.exists():
        os.rename(final_dir, backup)
    os.rename(tmp_dir, final_dir)
    fsync_dir(final_dir.parent)
    shutil.rmtree(backup, ignore_errors=True)


# -- manifests ---------------------------------------------------------------


def config_fingerprint(**fields) -> str:
    """A stable hash of a training configuration.

    Stored in every manifest and checked on resume so a checkpoint
    written under one recipe is never silently continued under another.
    Values must be JSON-serializable.
    """
    text = json.dumps(fields, sort_keys=True, default=str)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def write_manifest(
    directory: str | Path,
    artifacts: list[str],
    *,
    kind: str,
    config_hash: str | None = None,
    extra: dict | None = None,
    digests: dict[str, str] | None = None,
) -> dict:
    """Digest ``artifacts`` inside ``directory`` and write the manifest.

    The manifest is written last (atomically), so its presence certifies
    that every listed artifact was fully flushed first. Callers that
    already hold an artifact's bytes can pass its digest via ``digests``
    to skip re-reading the file (the fsync still happens). Returns the
    manifest payload.
    """
    directory = Path(directory)
    manifest = {
        "schema_version": SCHEMA_VERSION,
        "kind": kind,
        "config_hash": config_hash,
        "artifacts": {},
    }
    if extra:
        manifest.update(extra)
    for name in artifacts:
        path = directory / name
        with open(path, "rb") as handle:
            os.fsync(handle.fileno())
        digest = (digests or {}).get(name) or file_sha256(path)
        manifest["artifacts"][name] = {
            "sha256": digest,
            "bytes": path.stat().st_size,
        }
    atomic_write_json(directory / MANIFEST_NAME, manifest)
    return manifest


def verify_manifest(
    directory: str | Path,
    *,
    kind: str | None = None,
    required: bool = True,
) -> dict | None:
    """Checksum-verify every artifact a directory's manifest lists.

    Returns the parsed manifest, or ``None`` when the directory has no
    manifest and ``required`` is False (pre-manifest saves stay
    loadable). Any missing, truncated, or byte-flipped artifact — and a
    ``kind`` mismatch — raises :class:`ArtifactError` with the offending
    path and the expected/actual digests.
    """
    directory = Path(directory)
    manifest_path = directory / MANIFEST_NAME
    if not manifest_path.exists():
        if required:
            raise ArtifactError(
                "artifact manifest is missing", path=str(manifest_path)
            )
        return None
    manifest = read_json(manifest_path)
    if not isinstance(manifest, dict) or "artifacts" not in manifest:
        raise ArtifactError(
            "artifact manifest has no artifact table",
            path=str(manifest_path),
        )
    if manifest.get("schema_version") != SCHEMA_VERSION:
        raise ArtifactError(
            f"unsupported manifest schema "
            f"{manifest.get('schema_version')!r}",
            path=str(manifest_path),
            expected=str(SCHEMA_VERSION),
            actual=str(manifest.get("schema_version")),
        )
    if kind is not None and manifest.get("kind") != kind:
        raise ArtifactError(
            f"manifest kind {manifest.get('kind')!r} != expected {kind!r}",
            path=str(manifest_path),
            expected=kind,
            actual=str(manifest.get("kind")),
        )
    for name, meta in manifest["artifacts"].items():
        path = directory / name
        if not path.exists():
            raise ArtifactError(
                f"artifact {name!r} listed in manifest is missing",
                path=str(path),
                expected=meta.get("sha256"),
            )
        actual = file_sha256(path)
        if actual != meta.get("sha256"):
            raise ArtifactError(
                f"artifact {name!r} failed its checksum",
                path=str(path),
                expected=meta.get("sha256"),
                actual=actual,
            )
    return manifest


# -- RNG capture -------------------------------------------------------------


def capture_rng_states(
    loop_rng: np.random.Generator, model: "Module"
) -> list[dict]:
    """Snapshot the loop generator plus every distinct model generator.

    Order is deterministic: loop generator first, then model generators
    in module-traversal order (deduplicated by identity — in the MLM and
    distillation loops the loop generator *is* the dropout generator, so
    the list collapses to one entry).
    """
    rngs = [loop_rng]
    seen = {id(loop_rng)}
    for rng in module_rngs(model):
        if id(rng) not in seen:
            seen.add(id(rng))
            rngs.append(rng)
    return [rng_state(rng) for rng in rngs]


def restore_rng_states(
    states: list[dict], loop_rng: np.random.Generator, model: "Module"
) -> None:
    """Restore states captured by :func:`capture_rng_states` in order."""
    rngs = [loop_rng]
    seen = {id(loop_rng)}
    for rng in module_rngs(model):
        if id(rng) not in seen:
            seen.add(id(rng))
            rngs.append(rng)
    if len(states) != len(rngs):
        raise ArtifactError(
            f"checkpoint captured {len(states)} RNG stream(s), the "
            f"resumed run has {len(rngs)} — model construction differs"
        )
    for rng, state in zip(rngs, states):
        set_rng_state(rng, state)


# -- train state -------------------------------------------------------------


@dataclasses.dataclass
class TrainState:
    """Everything a training loop needs to continue bitwise-identically.

    ``epoch``/``steps_in_epoch`` locate the boundary (``steps_in_epoch``
    counts *completed* steps of ``epoch``); ``rng_setup`` is the
    generator state before any data-plan draws (rebuilds static MLM
    masks), ``rng_epoch_start`` the state before the current epoch's
    shuffle/masking draws (rebuilds the epoch plan), and ``rng_now`` the
    full per-generator snapshot at the boundary (continues mid-epoch,
    dropout included). ``done`` marks a completed run, so resuming it is
    a no-op rather than a retrain.
    """

    step: int
    epoch: int
    steps_in_epoch: int
    done: bool
    model_state: dict[str, np.ndarray]
    optimizer_state: dict[str, np.ndarray]
    history: list[float]
    epoch_losses: list[float]
    rng_setup: dict | None
    rng_epoch_start: dict | None
    rng_now: list[dict]


class CheckpointManager:
    """Atomic, checksummed, resumable training checkpoints in a directory.

    Layout::

        <directory>/
          step-00000010/        # one checkpoint per saved step boundary
            model.npz           # model state_dict
            optimizer.npz       # Adam/AdamW moments + step counter
            losses.npz          # per-epoch history + current-epoch losses
            state.json          # counters + RNG snapshots
            manifest.json       # schema, config hash, sha256 per artifact
          step-00000020/
          LATEST                # last-good pointer (atomic JSON)

    Writes go to a ``.tmp`` sibling first; the manifest is written last
    inside it; the directory is renamed into place; only then does the
    ``LATEST`` pointer move. A crash at any point leaves the previous
    last-good checkpoint intact and loadable. Loading verifies every
    checksum and rolls back to the next-newest good checkpoint when the
    preferred one is corrupt or torn.

    Fault-injection sites (chaos suite): ``train_step`` on every step
    boundary, ``checkpoint`` on save entry, ``checkpoint_commit`` between
    artifact flush and publication.
    """

    def __init__(
        self,
        directory: str | Path,
        *,
        every: int = 1,
        keep: int = 2,
        resume: bool = True,
        config_hash: str | None = None,
        fault_injector: "FaultInjector | None" = None,
    ) -> None:
        if every < 1:
            raise ValueError("every must be >= 1")
        if keep < 1:
            raise ValueError("keep must be >= 1")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.every = every
        self.keep = keep
        self.resume = resume
        self.config_hash = config_hash
        self.fault_injector = fault_injector
        #: Step the last :meth:`load_latest` resumed from (None = fresh).
        self.resumed_from: int | None = None
        #: True when the preferred checkpoint was corrupt and an older
        #: good one was used instead.
        self.rolled_back = False
        #: Saves performed through this manager (observability).
        self.saves = 0
        #: Set by :meth:`request_drain` (e.g. a SIGINT/SIGTERM handler);
        #: honored at the next step boundary in :meth:`maybe_save`.
        self._drain_requested = False
        #: Step of the checkpoint the drain committed (observability).
        self.drained_at_step: int | None = None

    # -- naming ------------------------------------------------------------

    @staticmethod
    def _dir_name(step: int) -> str:
        return f"step-{step:08d}"

    def _step_dirs(self) -> list[tuple[int, Path]]:
        """All checkpoint directories, newest step first."""
        found: list[tuple[int, Path]] = []
        for path in self.directory.glob("step-*"):
            if not path.is_dir() or path.name.endswith(".tmp"):
                continue
            try:
                step = int(path.name.split("-", 1)[1])
            except (IndexError, ValueError):
                continue
            found.append((step, path))
        return sorted(found, key=lambda pair: pair[0], reverse=True)

    def steps(self) -> list[int]:
        """Saved checkpoint steps, newest first."""
        return [step for step, __ in self._step_dirs()]

    # -- config binding ----------------------------------------------------

    def bind(self, config_hash: str) -> None:
        """Attach the training configuration fingerprint.

        Called by the training loops before resuming; a checkpoint whose
        manifest carries a different hash refuses to resume (typed
        :class:`ArtifactError`) instead of continuing a different recipe.
        """
        self.config_hash = config_hash

    # -- fault-injection sites ---------------------------------------------

    def check_step(self) -> None:
        """The ``train_step`` crash site — called at every step boundary."""
        if self.fault_injector is not None:
            self.fault_injector.check("train_step")

    # -- graceful drain ----------------------------------------------------

    def request_drain(self) -> None:
        """Ask the training loop to stop at the next step boundary.

        Safe to call from a signal handler: it only flips a flag. The
        next :meth:`maybe_save` call then *forces* a checkpoint —
        regardless of cadence — and raises
        :class:`~repro.runtime.errors.RunInterrupted` once it is durably
        published, so the partial run is a valid resume point and the
        CLI can exit with the documented partial-success code.
        """
        self._drain_requested = True

    # -- saving ------------------------------------------------------------

    def maybe_save(
        self,
        model: "Module",
        optimizer,
        loop_rng: np.random.Generator,
        *,
        step: int,
        epoch: int,
        steps_in_epoch: int,
        history: list[float],
        epoch_losses: list[float],
        rng_setup: dict | None,
        rng_epoch_start: dict | None,
        done: bool = False,
        force: bool = False,
    ) -> Path | None:
        """Checkpoint when ``step`` hits the cadence (or ``force``).

        Also exercises the ``train_step`` crash site, so a chaos run can
        kill training at any boundary whether or not it checkpoints there.
        """
        self.check_step()
        drain = self._drain_requested and not done
        if not force and not drain and step % self.every != 0:
            return None
        # A done checkpoint is a terminal marker: nothing resumes past it,
        # so it carries only the weights and history, not the optimizer
        # moments or RNG snapshots needed to continue training.
        state = TrainState(
            step=step,
            epoch=epoch,
            steps_in_epoch=steps_in_epoch,
            done=done,
            model_state=model.state_dict(),
            optimizer_state={} if done else optimizer_state(optimizer),
            history=list(history),
            epoch_losses=list(epoch_losses),
            rng_setup=None if done else rng_setup,
            rng_epoch_start=None if done else rng_epoch_start,
            rng_now=[] if done else capture_rng_states(loop_rng, model),
        )
        path = self.save(state)
        if drain:
            self.drained_at_step = step
            raise RunInterrupted(
                f"training drained at step {step}: checkpoint committed "
                f"to {path}; resume with --resume to continue",
                stage="train",
            )
        return path

    def save(self, state: TrainState) -> Path:
        """Write one checkpoint atomically and publish it as last-good."""
        if self.fault_injector is not None:
            self.fault_injector.check("checkpoint")
        name = self._dir_name(state.step)
        tmp = self.directory / (name + ".tmp")
        if tmp.exists():
            shutil.rmtree(tmp)
        tmp.mkdir(parents=True)
        # Serialize in memory so each artifact is hashed and written
        # exactly once (no post-write re-read for the manifest digest);
        # atomicity comes from the final directory rename, durability
        # from the per-file fsyncs in write_manifest.
        state_text = json.dumps(
            {
                "schema_version": SCHEMA_VERSION,
                "step": state.step,
                "epoch": state.epoch,
                "steps_in_epoch": state.steps_in_epoch,
                "done": state.done,
                "rng_setup": state.rng_setup,
                "rng_epoch_start": state.rng_epoch_start,
                "rng_now": state.rng_now,
            },
            indent=2,
            sort_keys=True,
        )
        payloads = {
            _MODEL_ARTIFACT: _npz_bytes(state.model_state),
            _OPTIMIZER_ARTIFACT: _npz_bytes(state.optimizer_state),
            _LOSSES_ARTIFACT: _npz_bytes(
                {
                    "history": np.asarray(state.history, dtype=np.float64),
                    "epoch_losses": np.asarray(
                        state.epoch_losses, dtype=np.float64
                    ),
                }
            ),
            _STATE_ARTIFACT: (state_text + "\n").encode("utf-8"),
        }
        digests = {}
        for artifact_name, payload in payloads.items():
            (tmp / artifact_name).write_bytes(payload)
            digests[artifact_name] = hashlib.sha256(payload).hexdigest()
        manifest = write_manifest(
            tmp,
            list(payloads),
            kind="train_checkpoint",
            config_hash=self.config_hash,
            extra={"step": state.step},
            digests=digests,
        )
        if self.fault_injector is not None:
            # Crash window between a fully-written temp checkpoint and
            # its publication: resume must fall back to the previous one.
            self.fault_injector.check("checkpoint_commit")
        final = self.directory / name
        if final.exists():
            shutil.rmtree(final)
        os.rename(tmp, final)
        fsync_dir(self.directory)
        manifest_digest = hashlib.sha256(_json_bytes(manifest)).hexdigest()
        atomic_write_json(
            self.directory / LATEST_NAME,
            {
                "schema_version": SCHEMA_VERSION,
                "dir": name,
                "step": state.step,
                "manifest_sha256": manifest_digest,
            },
        )
        self.saves += 1
        self._prune(protect=final)
        return final

    def _prune(self, protect: Path) -> None:
        """Drop checkpoints beyond the retention bound and stale temps."""
        for tmp in self.directory.glob("step-*.tmp"):
            if tmp.is_dir():
                shutil.rmtree(tmp, ignore_errors=True)
        for __, path in self._step_dirs()[self.keep :]:
            if path != protect:
                shutil.rmtree(path, ignore_errors=True)

    # -- loading -----------------------------------------------------------

    def _pointer_target(self) -> Path | None:
        pointer_path = self.directory / LATEST_NAME
        if not pointer_path.exists():
            return None
        try:
            pointer = read_json(pointer_path)
        except ArtifactError:
            return None
        if not isinstance(pointer, dict) or "dir" not in pointer:
            return None
        target = self.directory / str(pointer["dir"])
        return target if target.is_dir() else None

    def load(self, path: str | Path) -> TrainState:
        """Verify and parse one checkpoint directory (no fallback)."""
        path = Path(path)
        manifest = verify_manifest(path, kind="train_checkpoint")
        stored_hash = manifest.get("config_hash")
        if (
            self.config_hash is not None
            and stored_hash is not None
            and stored_hash != self.config_hash
        ):
            raise ArtifactError(
                "checkpoint was written for a different training "
                "configuration",
                path=str(path / MANIFEST_NAME),
                expected=self.config_hash,
                actual=stored_hash,
            )
        payload = read_json(path / _STATE_ARTIFACT)
        try:
            with np.load(path / _MODEL_ARTIFACT) as archive:
                model_state = {
                    name: archive[name] for name in archive.files
                }
            with np.load(path / _OPTIMIZER_ARTIFACT) as archive:
                opt_state = {name: archive[name] for name in archive.files}
            with np.load(path / _LOSSES_ARTIFACT) as archive:
                history = [float(x) for x in archive["history"]]
                epoch_losses = [float(x) for x in archive["epoch_losses"]]
            return TrainState(
                step=int(payload["step"]),
                epoch=int(payload["epoch"]),
                steps_in_epoch=int(payload["steps_in_epoch"]),
                done=bool(payload["done"]),
                model_state=model_state,
                optimizer_state=opt_state,
                history=history,
                epoch_losses=epoch_losses,
                rng_setup=payload["rng_setup"],
                rng_epoch_start=payload["rng_epoch_start"],
                rng_now=list(payload["rng_now"]),
            )
        except ArtifactError:
            raise
        except Exception as error:
            raise ArtifactError(
                f"checkpoint is unreadable "
                f"({type(error).__name__}: {error})",
                path=str(path),
            ) from error

    def load_latest(self) -> TrainState | None:
        """The newest verifiable checkpoint, rolling back past corrupt ones.

        Tries the ``LATEST`` pointer target first, then every other
        checkpoint newest-first. Integrity failures (bad checksum,
        truncation, torn directory) are skipped — that's the rollback —
        but a configuration-hash mismatch is a caller error and raises.
        Returns ``None`` when the directory holds no checkpoints at all;
        raises the first integrity error when it holds only corrupt ones
        (resuming from garbage is worse than stopping).
        """
        if not self.resume:
            return None
        candidates: list[Path] = []
        pointer = self._pointer_target()
        if pointer is not None:
            candidates.append(pointer)
        for __, path in self._step_dirs():
            if path not in candidates:
                candidates.append(path)
        errors: list[ArtifactError] = []
        for path in candidates:
            try:
                state = self.load(path)
            except ArtifactError as error:
                if error.expected is not None and error.actual is not None \
                        and error.expected == self.config_hash:
                    raise  # config mismatch: not recoverable by rollback
                errors.append(error)
                continue
            self.resumed_from = state.step
            self.rolled_back = bool(errors)
            return state
        if errors:
            raise errors[0]
        return None
