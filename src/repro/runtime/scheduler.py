"""Length-bucketed batch planning for inference.

Arrival-order chunking pads every sequence in a chunk to the chunk's longest
member, so a mixed-length corpus spends most of its FLOPs on padding. The
planner here sorts sequences by token count (a stable sort, so ties keep
arrival order), packs near-uniform-length neighbours into microbatches under
a *token budget* — the padded footprint ``rows * width`` of the batch the
encoder will actually see, not a fixed row count — and records the original
index of every row so callers can restore arrival order exactly.

The plan carries explicit width decisions; ``repro.nn.batching.pad_sequences``
accepts them via its ``width`` argument so padding and planning cannot
disagree. Combined with the width-invariant attention softmax
(:func:`repro.nn.functional.masked_softmax`) and the pinned-length context
contraction (``MultiHeadSelfAttention.ctx_pad_to``), a sequence's logits are
bitwise-identical no matter which microbatch it lands in, which is what lets
``tests/runtime/test_equivalence.py`` compare bucketed and arrival-order
plans with ``np.array_equal``.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Sequence


@dataclasses.dataclass(frozen=True)
class Microbatch:
    """One padded batch the model will run: row order is ``indices``."""

    indices: tuple[int, ...]  # original sequence positions, row order
    width: int  # padded time dimension

    @property
    def rows(self) -> int:
        return len(self.indices)

    @property
    def padded_tokens(self) -> int:
        """The padded footprint the encoder computes over."""
        return self.rows * self.width


@dataclasses.dataclass(frozen=True)
class BatchPlan:
    """A partition of sequence indices into microbatches."""

    microbatches: tuple[Microbatch, ...]
    total_tokens: int  # sum of effective (clipped) sequence lengths
    padded_tokens: int  # sum of microbatch padded footprints

    @property
    def num_sequences(self) -> int:
        return sum(batch.rows for batch in self.microbatches)

    @property
    def padding_waste(self) -> float:
        """Fraction of the computed footprint that is padding."""
        if self.padded_tokens == 0:
            return 0.0
        return 1.0 - self.total_tokens / self.padded_tokens


def plan_batches(
    lengths: Sequence[int],
    token_budget: int = 4096,
    max_len: int | None = None,
    max_rows: int | None = None,
    sort_by_length: bool = True,
) -> BatchPlan:
    """Plan microbatches over sequences of the given token counts.

    Args:
        lengths: per-sequence token counts, in arrival order.
        token_budget: cap on a microbatch's padded footprint
            (``rows * width``). A single sequence longer than the budget
            still gets a (singleton) microbatch.
        max_len: model length cap; longer sequences are budgeted at the
            clipped length (padding then truncates to the same width).
        max_rows: optional cap on rows per microbatch. With
            ``sort_by_length=False`` and a generous budget this reproduces
            naive arrival-order chunking exactly.
        sort_by_length: sort sequences by token count before packing
            (stable, so equal lengths keep arrival order).

    Returns:
        A :class:`BatchPlan` whose microbatches partition
        ``range(len(lengths))`` — every index appears in exactly one
        microbatch, exactly once.
    """
    if token_budget <= 0:
        raise ValueError("token_budget must be positive")
    if max_rows is not None and max_rows <= 0:
        raise ValueError("max_rows must be positive")

    # Effective length: what the padded batch will actually be sized by.
    effective = [
        max(1, min(length, max_len) if max_len else length)
        for length in lengths
    ]
    order = list(range(len(lengths)))
    if sort_by_length:
        order.sort(key=lambda index: effective[index])

    microbatches: list[Microbatch] = []
    current: list[int] = []
    width = 0

    def close() -> None:
        nonlocal current, width
        if current:
            microbatches.append(Microbatch(tuple(current), width))
            current, width = [], 0

    for index in order:
        length = effective[index]
        grown = max(width, length)
        if current and (
            (len(current) + 1) * grown > token_budget
            or (max_rows is not None and len(current) >= max_rows)
        ):
            close()
            grown = length
        current.append(index)
        width = grown
    close()

    total = sum(effective)
    padded = sum(batch.padded_tokens for batch in microbatches)
    return BatchPlan(tuple(microbatches), total, padded)
