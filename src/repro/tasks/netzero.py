"""Net-zero target classification task.

Classifies sentences as net-zero pledges, emission-reduction targets, or
other climate text (after Schimanski et al.'s ClimateBERT-NetZero). The
first *classification* tenant: weak supervision here is keyword
labeling-function voting (:mod:`repro.tasks.weak`) rather than
Algorithm 1 — gold labels are only ever read by the eval metric.
"""

from __future__ import annotations

from repro.datasets.netzero_targets import (
    NETZERO_TARGET_LABELS,
    NUM_SENTENCES,
    build_netzero_targets,
)
from repro.tasks.models import ClassificationTask
from repro.tasks.registry import register_task
from repro.tasks.weak import KeywordRule


@register_task
class NetZeroTargetTask(ClassificationTask):
    name = "netzero-target"
    description = "Net-zero vs reduction-target vs other sentence classification"
    labels = NETZERO_TARGET_LABELS
    default_label = "other"
    default_size = NUM_SENTENCES
    rules = (
        KeywordRule(
            "net-zero",
            (
                "net-zero",
                "net zero",
                "carbon neutrality",
                "carbon neutral",
                "climate neutrality",
                "climate-neutral",
            ),
        ),
        KeywordRule(
            "reduction",
            ("reduce", "reduction", "cut ", "lower", "%", "percent"),
        ),
    )

    @staticmethod
    def dataset_builder(seed: int, size: int):
        return build_netzero_targets(seed=seed, size=size)
