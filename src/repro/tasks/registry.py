"""Decorator-based task registry with lazy builtin loading.

``@register_task`` on a :class:`~repro.tasks.base.Task` subclass
validates and registers an instance under its ``name``. The four builtin
workloads are *not* imported with ``repro.tasks`` — a module table maps
their names to implementation modules and :func:`get_task` imports on
first lookup, so ``import repro`` stays fast and a process that only
runs GoalSpotter never pays for the other tenants.

Lookup failures raise :class:`~repro.runtime.errors.TaskRegistryError`,
an :class:`~repro.runtime.errors.InputError` — the CLI maps it to exit
code 2 like every other caller mistake in the taxonomy.
"""

from __future__ import annotations

import importlib

from repro.runtime.errors import TaskRegistryError
from repro.tasks.base import Task

#: name -> registered instance (populated by @register_task).
_REGISTRY: dict[str, Task] = {}

#: Builtin task names -> the module whose import registers them.
_BUILTIN_MODULES: dict[str, str] = {
    "goalspotter": "repro.tasks.goalspotter",
    "taxonomy-kpi": "repro.tasks.taxonomy",
    "netzero-target": "repro.tasks.netzero",
    "initiative-sentence": "repro.tasks.initiative",
}


def register_task(cls: type[Task]) -> type[Task]:
    """Class decorator: validate and register an instance of ``cls``.

    Raises:
        TaskRegistryError: on duplicate names, or when a third-party
            module tries to claim a builtin name.
    """
    task = cls()
    task.validate()
    reserved_module = _BUILTIN_MODULES.get(task.name)
    if reserved_module is not None and cls.__module__ != reserved_module:
        raise TaskRegistryError(
            f"task name {task.name!r} is reserved for the builtin "
            f"{reserved_module}; pick another name"
        )
    if task.name in _REGISTRY:
        raise TaskRegistryError(
            f"task {task.name!r} is already registered "
            f"(by {type(_REGISTRY[task.name]).__module__})"
        )
    _REGISTRY[task.name] = task
    return cls


def get_task(name: str) -> Task:
    """Look up a task by name, lazily importing builtin modules.

    Raises:
        TaskRegistryError: unknown name; the message lists the registry.
    """
    task = _REGISTRY.get(name)
    if task is not None:
        return task
    module = _BUILTIN_MODULES.get(name)
    if module is not None:
        importlib.import_module(module)
        return _REGISTRY[name]
    raise TaskRegistryError(
        f"unknown task {name!r}; available tasks: {', '.join(task_names())}"
    )


def task_names() -> list[str]:
    """Sorted names of every known task (registered or builtin-lazy)."""
    return sorted(set(_REGISTRY) | set(_BUILTIN_MODULES))


def load_all_tasks() -> dict[str, Task]:
    """Force-load every known task; returns ``name -> task``."""
    return {name: get_task(name) for name in task_names()}
