"""The task plugin contract (DESIGN §6h).

A *task* bundles everything the substrate needs to carry a workload end
to end: a seeded dataset generator, the label schema, a weak labeler, a
model factory, an eval metric, and a golden-fixture recipe. Registered
tasks (see :mod:`repro.tasks.registry`) automatically inherit the repo's
correctness regime — the parametrized conformance suite in
``tests/tasks/`` asserts the bitwise batching/parallel/cache contracts,
checkpoint-resume equivalence, degradation-ladder behavior, and a frozen
golden fixture for every task in the registry.

This module is deliberately light: importing it (and therefore
``repro.tasks``) pulls no model or dataset code. Task *implementations*
live in lazily imported modules and typically subclass the kind-specific
helpers in :mod:`repro.tasks.models`.
"""

from __future__ import annotations

import abc
import dataclasses
from typing import TYPE_CHECKING, Any, ClassVar

from repro.runtime.errors import TaskRegistryError

if TYPE_CHECKING:  # heavy imports stay out of the light package surface
    from pathlib import Path

    from repro.datasets.base import Dataset
    from repro.tasks.models import TaskModel

#: The two workload kinds the substrate carries end to end.
KIND_EXTRACTION = "extraction"
KIND_CLASSIFICATION = "classification"
TASK_KINDS = (KIND_EXTRACTION, KIND_CLASSIFICATION)


@dataclasses.dataclass(frozen=True)
class GoldenRecipe:
    """Pinned seeds/sizes a task's golden fixture (and bench) is built from.

    The conformance suite trains the ``profile`` model on
    ``train_size`` examples generated at ``train_seed`` and freezes the
    rows produced on ``eval_size`` texts generated at ``eval_seed`` —
    changing any of these regenerates a different fixture, so they are
    part of the task's public contract.
    """

    train_seed: int = 7101
    train_size: int = 56
    eval_seed: int = 7202
    eval_size: int = 12
    profile: str = "tiny"


class Task(abc.ABC):
    """One registered workload: schema + data + weak labels + model + eval.

    Subclasses declare the class attributes and implement the five
    factory/evaluation hooks; :func:`repro.tasks.register_task` validates
    and registers an instance. ``fields`` is the output-row schema
    (detail fields for extraction, ``("Label", "Score")`` for
    classification); ``labels`` names the classes of classification
    tasks and stays empty for extraction.
    """

    name: ClassVar[str] = ""
    kind: ClassVar[str] = ""
    description: ClassVar[str] = ""
    fields: ClassVar[tuple[str, ...]] = ()
    labels: ClassVar[tuple[str, ...]] = ()
    default_size: ClassVar[int] = 0
    golden: ClassVar[GoldenRecipe] = GoldenRecipe()

    def validate(self) -> None:
        """Reject structurally broken task declarations at register time."""
        if not self.name or not self.name.strip():
            raise TaskRegistryError("task name must be non-empty")
        if self.kind not in TASK_KINDS:
            raise TaskRegistryError(
                f"task {self.name!r} has unknown kind {self.kind!r}; "
                f"use one of {TASK_KINDS}"
            )
        if not self.fields:
            raise TaskRegistryError(
                f"task {self.name!r} declares no output fields"
            )
        if self.kind == KIND_CLASSIFICATION and len(self.labels) < 2:
            raise TaskRegistryError(
                f"classification task {self.name!r} needs >= 2 labels"
            )
        if self.default_size <= 0:
            raise TaskRegistryError(
                f"task {self.name!r} must declare a positive default_size"
            )

    # -- the plugin contract ----------------------------------------------

    @abc.abstractmethod
    def build_dataset(
        self, seed: int = 0, size: int | None = None
    ) -> "Dataset":
        """Seeded dataset generation; same seed+size => identical dataset."""

    @abc.abstractmethod
    def build_model(self, profile: str = "default", **overrides) -> "TaskModel":
        """An unfitted task model. ``profile`` picks a config preset
        (``"default"`` = paper-scale, ``"tiny"`` = test/bench scale);
        kind-specific overrides (fields, zoo model, finetune, cache
        capacity) refine it."""

    @abc.abstractmethod
    def load_model(self, directory: "str | Path") -> "TaskModel":
        """Restore a fitted task model saved with ``TaskModel.save``."""

    @abc.abstractmethod
    def weak_label(self, dataset: "Dataset") -> dict[str, Any]:
        """Run the task's weak labeler alone; returns coverage stats."""

    @abc.abstractmethod
    def evaluate(self, model: "TaskModel", dataset: "Dataset") -> dict[str, float]:
        """Score a fitted model on a dataset with the task's metric."""

    def golden_recipe(self) -> GoldenRecipe:
        """The pinned recipe behind ``tests/golden/task_<name>.json``."""
        return self.golden

    def __repr__(self) -> str:
        return f"<Task {self.name!r} kind={self.kind!r}>"
