"""Keyword labeling functions for classification tasks.

The paper's weak supervision converts gold *annotations* into token
labels via Algorithm 1 substring matching; the registry's classification
tasks use the same philosophy one level up: a handful of keyword
labeling functions vote on each sentence and the majority label trains
the model. Gold labels are never seen at fit time — they are reserved
for :meth:`repro.tasks.base.Task.evaluate`.

Voting is deterministic: ties break toward the earlier entry of the
task's label tuple, and a sentence no rule fires on falls back to the
task's default label.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Sequence


@dataclasses.dataclass(frozen=True)
class KeywordRule:
    """One labeling function: fire ``label`` when any keyword occurs.

    Matching is case-insensitive substring containment, mirroring the
    Algorithm 1 matcher's exact mode.
    """

    label: str
    keywords: tuple[str, ...]

    def __call__(self, text: str) -> str | None:
        lowered = text.lower()
        for keyword in self.keywords:
            if keyword in lowered:
                return self.label
        return None


@dataclasses.dataclass
class WeakVoteStats:
    """Coverage bookkeeping for a :func:`weak_vote` run."""

    total: int = 0
    covered: int = 0  # >= 1 rule fired
    abstained: int = 0  # no rule fired -> default label
    conflicts: int = 0  # rules disagreed; majority/tie-break decided
    votes_per_label: dict[str, int] = dataclasses.field(default_factory=dict)

    @property
    def coverage(self) -> float:
        """Fraction of texts at least one labeling function fired on."""
        if self.total == 0:
            return 1.0
        return self.covered / self.total

    def as_dict(self) -> dict:
        return {
            "total": self.total,
            "covered": self.covered,
            "abstained": self.abstained,
            "conflicts": self.conflicts,
            "coverage": self.coverage,
            "votes_per_label": dict(self.votes_per_label),
        }


def weak_vote(
    texts: Sequence[str],
    rules: Sequence[KeywordRule],
    labels: Sequence[str],
    default_label: str,
) -> tuple[list[str], WeakVoteStats]:
    """Majority-vote the labeling functions over ``texts``.

    Args:
        texts: sentences to label.
        rules: the labeling functions, in priority order.
        labels: the task's label tuple; vote ties break toward the
            earlier entry, making the outcome order-deterministic.
        default_label: assigned when every rule abstains.

    Returns:
        Parallel weak labels plus coverage stats.
    """
    order = {label: index for index, label in enumerate(labels)}
    if default_label not in order:
        raise ValueError(
            f"default label {default_label!r} not in labels {tuple(labels)}"
        )
    for rule in rules:
        if rule.label not in order:
            raise ValueError(
                f"rule labels {rule.label!r} outside labels {tuple(labels)}"
            )
    stats = WeakVoteStats()
    assigned: list[str] = []
    for text in texts:
        stats.total += 1
        votes: dict[str, int] = {}
        for rule in rules:
            fired = rule(text)
            if fired is not None:
                votes[fired] = votes.get(fired, 0) + 1
        if not votes:
            stats.abstained += 1
            assigned.append(default_label)
            continue
        stats.covered += 1
        if len(votes) > 1:
            stats.conflicts += 1
        winner = min(votes, key=lambda label: (-votes[label], order[label]))
        stats.votes_per_label[winner] = stats.votes_per_label.get(winner, 0) + 1
        assigned.append(winner)
    return assigned, stats
