"""EU-Taxonomy KPI extraction task.

Extracts the taxonomy KPI name, the aligned share, and the fiscal year
from disclosure sentences (after Schmoll & Jatowt's EU-Taxonomy KPI
work) — a second *extraction* tenant proving the weak-supervision
pipeline generalizes beyond the paper's sustainability-goal schema with
zero model changes: Algorithm 1 substring matching works unchanged
because the generator keeps every detail value a verbatim substring.
"""

from __future__ import annotations

from repro.core.schema import TAXONOMY_KPI_FIELDS
from repro.datasets.taxonomy_kpi import NUM_SENTENCES, build_taxonomy_kpi
from repro.tasks.models import ExtractionTask
from repro.tasks.registry import register_task


@register_task
class TaxonomyKpiTask(ExtractionTask):
    name = "taxonomy-kpi"
    description = "EU-Taxonomy KPI extraction (KPI, aligned share, fiscal year)"
    fields = TAXONOMY_KPI_FIELDS
    default_size = NUM_SENTENCES

    @staticmethod
    def dataset_builder(seed: int, size: int):
        return build_taxonomy_kpi(seed=seed, size=size)
