"""The original GoalSpotter workload as registry task #1.

This is the paper's own pipeline — Sustainability Goals dataset,
Algorithm 1 weak labeling, token-classification detail extraction —
re-wired through the task contract. The configs built here are
field-for-field what ``repro.cli`` built before the registry existed, so
training through ``train --task goalspotter`` produces byte-identical
artifacts and the pre-registry golden fixtures stay green.
"""

from __future__ import annotations

from repro.core.schema import SUSTAINABILITY_FIELDS
from repro.datasets.sustainability import NUM_OBJECTIVES, build_sustainability_goals
from repro.tasks.models import ExtractionTask
from repro.tasks.registry import register_task


@register_task
class GoalSpotterTask(ExtractionTask):
    name = "goalspotter"
    description = "Detail extraction from sustainability objectives (the paper's GoalSpotter)"
    fields = SUSTAINABILITY_FIELDS
    default_size = NUM_OBJECTIVES

    @staticmethod
    def dataset_builder(seed: int, size: int):
        return build_sustainability_goals(seed=seed, size=size)
