"""Task model wrappers + kind-specific task base classes.

``TaskModel`` gives every workload one uniform fitted-model surface —
``fit``/``run_batch``/``run_batch_parallel``/``run_resilient``/``save``
— regardless of whether the backend is the paper's
:class:`~repro.core.extractor.WeakSupervisionExtractor` or a
:class:`~repro.models.text_classifier.TextLabelClassifier`. The
cross-task conformance suite (``tests/tasks/``) is written entirely
against this surface, which is what lets one parametrized test file gate
every registered task.

Rows are ``dict[str, str]`` keyed by the task's ``fields``:

* extraction rows are the extractor's detail dicts;
* classification rows are ``{"Label": name, "Score": repr(prob)}`` —
  ``repr`` round-trips floats exactly, so string equality of rows is
  bitwise equality of the underlying probabilities.

This module is heavy (numpy, encoders); it is imported lazily by the
task implementation modules, never by ``repro.tasks`` itself.
"""

from __future__ import annotations

import abc
import dataclasses
from collections.abc import Sequence
from pathlib import Path
from typing import Any, ClassVar

import numpy as np

from repro.core.extractor import ExtractorConfig, WeakSupervisionExtractor
from repro.datasets.base import Dataset
from repro.eval.classification import evaluate_classification
from repro.eval.metrics import evaluate_extractions
from repro.models.text_classifier import (
    TextClassifierConfig,
    TextLabelClassifier,
    classification_rows,
)
from repro.models.training import FineTuneConfig
from repro.runtime.errors import InputError, ReproError
from repro.runtime.parallel import (
    classify_batch_parallel,
    extract_batch_parallel,
    resolve_workers,
)
from repro.goalspotter.pipeline import ON_ERROR_POLICIES
from repro.runtime.resilience import RetryPolicy, run_stage
from repro.tasks.base import KIND_CLASSIFICATION, KIND_EXTRACTION, Task
from repro.tasks.weak import KeywordRule, weak_vote

#: Output-row schema shared by every classification task.
CLASSIFICATION_FIELDS = ("Label", "Score")


class TaskModel(abc.ABC):
    """Uniform surface over a task's fitted model.

    Attributes:
        backend: the wrapped estimator (extractor or classifier); the
            escape hatch for backend-specific knobs (``fault_injector``,
            ``result_cache``, config swaps via ``dataclasses.replace``).
    """

    kind: ClassVar[str] = ""
    serving_kind: ClassVar[str] = ""

    def __init__(self, backend, fields: tuple[str, ...]):
        self.backend = backend
        self.fields = tuple(fields)

    # -- shared knobs ------------------------------------------------------

    @property
    def fault_injector(self):
        return self.backend.fault_injector

    @fault_injector.setter
    def fault_injector(self, injector) -> None:
        self.backend.fault_injector = injector

    def empty_row(self) -> dict[str, str]:
        """The degraded-output row: every field empty."""
        return {field: "" for field in self.fields}

    # -- the contract ------------------------------------------------------

    @abc.abstractmethod
    def fit(self, dataset: Dataset, checkpoint=None) -> "TaskModel":
        """Weak-label the dataset and train the backend; returns self."""

    @abc.abstractmethod
    def run_batch(self, texts: Sequence[str]) -> list[dict[str, str]]:
        """One output row per text, in order."""

    @abc.abstractmethod
    def run_batch_parallel(
        self,
        texts: Sequence[str],
        *,
        workers: int | str | None = None,
        num_shards: int | None = None,
    ) -> list[dict[str, str]]:
        """Multiprocess ``run_batch``; bitwise-identical to ``workers=1``."""

    @abc.abstractmethod
    def save(self, directory: str | Path) -> None:
        """Atomic manifest-verified save of the fitted backend."""

    @abc.abstractmethod
    def weak_summary(self) -> dict[str, Any]:
        """Coverage stats from the last ``fit``'s weak-labeling pass."""

    # -- degradation ladder ------------------------------------------------

    def run_resilient(
        self,
        texts: Sequence[str],
        *,
        on_error: str = "degrade",
        policy: RetryPolicy | None = None,
        workers: int | str | None = 1,
    ) -> list[tuple[dict[str, str], str]]:
        """Batch inference with the CLI's degradation ladder.

        Optimistic whole-batch attempt first; on failure each text is
        retried in isolation so one poisoned input cannot take down its
        batchmates. Returns ``(row, status)`` pairs where status is
        ``"ok"``, ``"skipped"`` (row omitted semantics), or
        ``"degraded"`` (empty row stands in).
        """
        if on_error not in ON_ERROR_POLICIES:
            raise InputError(
                f"unknown on_error {on_error!r}; use {ON_ERROR_POLICIES}",
                stage="tasks",
            )
        texts = list(texts)
        if not texts:
            return []
        policy = policy or RetryPolicy(max_retries=0, base_delay=0.0, jitter=0.0)

        def batch() -> list[dict[str, str]]:
            if resolve_workers(workers) > 1 and len(texts) > 1:
                return self.run_batch_parallel(texts, workers=workers)
            return self.run_batch(texts)

        try:
            rows = run_stage(batch, stage=self.kind, policy=policy)
            return [(row, "ok") for row in rows]
        except ReproError:
            if on_error == "raise":
                raise
        results: list[tuple[dict[str, str], str]] = []
        for text in texts:
            try:
                row = run_stage(
                    lambda t=text: self.run_batch([t])[0],
                    stage=self.kind,
                    policy=policy,
                )
                results.append((row, "ok"))
            except ReproError:
                status = "skipped" if on_error == "skip" else "degraded"
                results.append((self.empty_row(), status))
        return results

    # -- durable runs ------------------------------------------------------

    def run_journaled(
        self,
        texts: Sequence[str],
        run_dir,
        *,
        workers: int = 1,
        resume: bool = True,
        segment_items: int | None = None,
        on_error: str = "raise",
        **kwargs,
    ) -> list[tuple[dict[str, str], str]]:
        """Crash-safe ``run_resilient``: journaled, resumable, supervised.

        Segments of the corpus commit to a run journal in ``run_dir`` as
        they finish (:mod:`repro.runtime.journal`); re-running with the
        same directory and ``resume=True`` skips committed segments and
        returns ``(row, status)`` pairs bitwise-identical to an
        uninterrupted run — for extraction *and* classification tasks
        alike. ``workers>1`` executes under the lease-supervised worker
        pool; extra ``kwargs`` reach
        :func:`repro.runtime.supervisor.run_durable_rows` (``config``,
        ``fault_injector``, ``drain_event``, ...).
        """
        from repro.runtime.supervisor import (
            DEFAULT_SEGMENT_ITEMS,
            run_durable_rows,
        )

        if on_error not in ON_ERROR_POLICIES:
            raise InputError(
                f"unknown on_error {on_error!r}; use {ON_ERROR_POLICIES}",
                stage="tasks",
            )
        result = run_durable_rows(
            self.backend,
            self.kind,
            list(texts),
            run_dir,
            workers=resolve_workers(workers),
            resume=resume,
            segment_items=segment_items or DEFAULT_SEGMENT_ITEMS,
            on_error=on_error,
            fields=self.fields,
            **kwargs,
        )
        return result.pairs

    # -- serving -----------------------------------------------------------

    def serving_engine(self, **kwargs):
        """A :class:`~repro.serve.ServingEngine` over this model."""
        from repro.serve.engine import ServingEngine

        return ServingEngine.from_task_model(self, **kwargs)

    def fleet_router(self, **kwargs):
        """A :class:`~repro.serve.FleetRouter` fleet over this model."""
        from repro.serve.fleet import FleetRouter

        if self.serving_kind == "detect":
            return FleetRouter(detector=self.backend, **kwargs)
        return FleetRouter(extractor=self.backend, **kwargs)


class ExtractionModel(TaskModel):
    """Task model over the paper's weak-supervision detail extractor."""

    kind = KIND_EXTRACTION
    serving_kind = "extract"

    def __init__(self, extractor: WeakSupervisionExtractor):
        super().__init__(extractor, extractor.config.fields)

    def fit(self, dataset: Dataset, checkpoint=None) -> "ExtractionModel":
        self.backend.fit(list(dataset.objectives), checkpoint=checkpoint)
        return self

    def run_batch(self, texts: Sequence[str]) -> list[dict[str, str]]:
        return self.backend.extract_batch(list(texts))

    def run_batch_parallel(
        self,
        texts: Sequence[str],
        *,
        workers: int | str | None = None,
        num_shards: int | None = None,
    ) -> list[dict[str, str]]:
        return extract_batch_parallel(
            self.backend, list(texts), workers=workers, num_shards=num_shards
        )

    def save(self, directory: str | Path) -> None:
        self.backend.save(directory)

    def weak_summary(self) -> dict[str, Any]:
        stats = self.backend.weak_stats
        return {
            "coverage": stats.coverage,
            "annotations_total": stats.annotations_total,
            "annotations_matched": stats.annotations_matched,
        }


class ClassificationModel(TaskModel):
    """Task model that weak-labels sentences with keyword voting and
    trains a :class:`TextLabelClassifier` on the votes."""

    kind = KIND_CLASSIFICATION
    serving_kind = "detect"

    def __init__(
        self,
        classifier: TextLabelClassifier,
        rules: tuple[KeywordRule, ...],
        default_label: str,
    ):
        super().__init__(classifier, CLASSIFICATION_FIELDS)
        self.rules = tuple(rules)
        self.default_label = default_label
        self.weak_stats = None

    @property
    def labels(self) -> tuple[str, ...]:
        return self.backend.labels

    def fit(self, dataset: Dataset, checkpoint=None) -> "ClassificationModel":
        texts = [objective.text for objective in dataset.objectives]
        weak_labels, self.weak_stats = weak_vote(
            texts, self.rules, self.labels, self.default_label
        )
        index = {label: i for i, label in enumerate(self.labels)}
        self.backend.fit(
            texts,
            [index[label] for label in weak_labels],
            checkpoint=checkpoint,
        )
        return self

    def _rows(self, probabilities: np.ndarray) -> list[dict[str, str]]:
        return classification_rows(self.labels, probabilities)

    def predict_proba(self, texts: Sequence[str]) -> np.ndarray:
        return self.backend.predict_proba(list(texts))

    def run_batch(self, texts: Sequence[str]) -> list[dict[str, str]]:
        return self._rows(self.backend.predict_proba(list(texts)))

    def run_batch_parallel(
        self,
        texts: Sequence[str],
        *,
        workers: int | str | None = None,
        num_shards: int | None = None,
    ) -> list[dict[str, str]]:
        return self._rows(
            classify_batch_parallel(
                self.backend,
                list(texts),
                workers=workers,
                num_shards=num_shards,
            )
        )

    def save(self, directory: str | Path) -> None:
        self.backend.save(directory)

    def weak_summary(self) -> dict[str, Any]:
        if self.weak_stats is None:
            return {"coverage": 0.0, "total": 0}
        return self.weak_stats.as_dict()


# -- kind-specific Task helpers -------------------------------------------


class ExtractionTask(Task):
    """Base for tasks backed by the weak-supervision detail extractor.

    Subclasses set ``fields``, ``default_size`` and ``dataset_builder``
    (a ``(seed, size)`` callable); everything else — tiny/default model
    profiles, load, weak-label inspection, value-level F1 eval — is
    shared.
    """

    kind = KIND_EXTRACTION

    @staticmethod
    def dataset_builder(seed: int, size: int) -> Dataset:
        raise NotImplementedError

    def build_dataset(self, seed: int = 0, size: int | None = None) -> Dataset:
        return type(self).dataset_builder(
            seed, self.default_size if size is None else size
        )

    def _profile_config(self, profile: str) -> ExtractorConfig:
        if profile == "default":
            return ExtractorConfig(fields=self.fields)
        if profile == "tiny":
            return ExtractorConfig(
                fields=self.fields,
                model="distilbert",
                max_len=64,
                num_merges=150,
                finetune=FineTuneConfig(epochs=2, batch_size=8),
            )
        raise InputError(
            f"unknown model profile {profile!r}; use 'default' or 'tiny'",
            stage="tasks",
        )

    def build_model(self, profile: str = "default", **overrides) -> ExtractionModel:
        config = dataclasses.replace(self._profile_config(profile), **overrides)
        return ExtractionModel(WeakSupervisionExtractor(config))

    def load_model(self, directory: str | Path) -> ExtractionModel:
        return ExtractionModel(WeakSupervisionExtractor.load(directory))

    def weak_label(self, dataset: Dataset) -> dict[str, Any]:
        extractor = WeakSupervisionExtractor(self._profile_config("tiny"))
        extractor.prepare_weak_labels(list(dataset.objectives))
        stats = extractor.weak_stats
        return {
            "coverage": stats.coverage,
            "annotations_total": stats.annotations_total,
            "annotations_matched": stats.annotations_matched,
        }

    def evaluate(self, model: TaskModel, dataset: Dataset) -> dict[str, float]:
        texts = [objective.text for objective in dataset.objectives]
        gold = [objective.details for objective in dataset.objectives]
        report = evaluate_extractions(model.run_batch(texts), gold, self.fields)
        return {
            "precision": report.precision,
            "recall": report.recall,
            "f1": report.f1,
        }


class ClassificationTask(Task):
    """Base for keyword-weak-labeled sentence classification tasks.

    Subclasses set ``labels``, ``rules``, ``default_label``,
    ``default_size`` and ``dataset_builder``; the gold label lives in
    each objective's details under ``label_field`` and is only read at
    eval time.
    """

    kind = KIND_CLASSIFICATION
    fields = CLASSIFICATION_FIELDS
    rules: ClassVar[tuple[KeywordRule, ...]] = ()
    default_label: ClassVar[str] = ""
    label_field: ClassVar[str] = "Label"

    @staticmethod
    def dataset_builder(seed: int, size: int) -> Dataset:
        raise NotImplementedError

    def build_dataset(self, seed: int = 0, size: int | None = None) -> Dataset:
        return type(self).dataset_builder(
            seed, self.default_size if size is None else size
        )

    def _profile_config(self, profile: str) -> TextClassifierConfig:
        if profile == "default":
            return TextClassifierConfig(labels=self.labels)
        if profile == "tiny":
            return TextClassifierConfig(
                labels=self.labels,
                dim=32,
                num_layers=1,
                num_heads=4,
                ffn_dim=64,
                max_len=48,
                num_merges=120,
                finetune=FineTuneConfig(epochs=3, batch_size=8),
            )
        raise InputError(
            f"unknown model profile {profile!r}; use 'default' or 'tiny'",
            stage="tasks",
        )

    def build_model(
        self, profile: str = "default", **overrides
    ) -> ClassificationModel:
        config = dataclasses.replace(self._profile_config(profile), **overrides)
        return ClassificationModel(
            TextLabelClassifier(config), self.rules, self.default_label
        )

    def load_model(self, directory: str | Path) -> ClassificationModel:
        return ClassificationModel(
            TextLabelClassifier.load(directory), self.rules, self.default_label
        )

    def weak_label(self, dataset: Dataset) -> dict[str, Any]:
        texts = [objective.text for objective in dataset.objectives]
        weak_labels, stats = weak_vote(
            texts, self.rules, self.labels, self.default_label
        )
        gold = [
            objective.details.get(self.label_field, "")
            for objective in dataset.objectives
        ]
        agreement = sum(
            1 for weak, truth in zip(weak_labels, gold) if weak == truth
        )
        summary = stats.as_dict()
        summary["gold_agreement"] = agreement / len(texts) if texts else 1.0
        return summary

    def evaluate(self, model: TaskModel, dataset: Dataset) -> dict[str, float]:
        texts = [objective.text for objective in dataset.objectives]
        gold = [
            objective.details.get(self.label_field, "")
            for objective in dataset.objectives
        ]
        predicted = [row["Label"] for row in model.run_batch(texts)]
        report = evaluate_classification(predicted, gold, self.labels)
        return {"accuracy": report.accuracy, "macro_f1": report.macro_f1}
