"""The task registry: pluggable workloads over one serving substrate.

Every registered task carries a full workload through the repo's
machinery — seeded dataset generation, weak labeling, fine-tuning with
checkpoint/resume, cached + batched inference, serving — and is gated by
the same parametrized conformance suite (``tests/tasks/``). See
DESIGN §6h for the plugin contract and the README's "Task registry"
section for a worked add-your-own-task example.

Importing this package is cheap: only the contract (`Task`,
`GoldenRecipe`), the keyword weak-labeler, and the registry front door
load here. Task implementations (and their numpy-heavy model wrappers in
:mod:`repro.tasks.models`) are imported lazily on first
:func:`get_task`.
"""

from repro.runtime.errors import TaskRegistryError
from repro.tasks.base import (
    KIND_CLASSIFICATION,
    KIND_EXTRACTION,
    TASK_KINDS,
    GoldenRecipe,
    Task,
)
from repro.tasks.registry import (
    get_task,
    load_all_tasks,
    register_task,
    task_names,
)
from repro.tasks.weak import KeywordRule, WeakVoteStats, weak_vote

__all__ = [
    "GoldenRecipe",
    "KIND_CLASSIFICATION",
    "KIND_EXTRACTION",
    "KeywordRule",
    "TASK_KINDS",
    "Task",
    "TaskRegistryError",
    "WeakVoteStats",
    "get_task",
    "load_all_tasks",
    "register_task",
    "task_names",
    "weak_vote",
]
