"""Sustainability-initiative sentence classification task.

Labels report sentences as environmental, social, or governance
initiatives — or none — after Hirlea et al.'s sustainability-initiative
detection. Like ``netzero-target`` this trains purely on keyword
labeling-function votes; the four-way label space and the higher
abstain rate (filler sentences) stress the weak-voting path differently.
"""

from __future__ import annotations

from repro.datasets.initiatives import (
    INITIATIVE_LABELS,
    NUM_SENTENCES,
    build_initiative_sentences,
)
from repro.tasks.models import ClassificationTask
from repro.tasks.registry import register_task
from repro.tasks.weak import KeywordRule


@register_task
class InitiativeSentenceTask(ClassificationTask):
    name = "initiative-sentence"
    description = "ESG initiative sentence classification (env/social/governance/none)"
    labels = INITIATIVE_LABELS
    default_label = "none"
    default_size = NUM_SENTENCES
    rules = (
        KeywordRule(
            "environmental",
            (
                "solar",
                "recycl",
                "forest",
                "water",
                "electric vehicle",
                "biodiversity",
                "waste",
                "emission",
            ),
        ),
        KeywordRule(
            "social",
            (
                "scholarship",
                "training",
                "mentoring",
                "diversity",
                "food bank",
                "parental leave",
                "volunteer",
                "wellbeing",
            ),
        ),
        KeywordRule(
            "governance",
            (
                "anti-corruption",
                "ethics",
                "code of conduct",
                "audit",
                "tax transparency",
                "whistleblower",
                "board oversight",
            ),
        ),
    )

    @staticmethod
    def dataset_builder(seed: int, size: int):
        return build_initiative_sentences(seed=seed, size=size)
