"""Text processing substrate: normalization, tokenization, and BPE.

This package provides the preprocessing stack described in Section 3.2 of the
paper: GoalSpotter-style text normalization, a word-level tokenizer that keeps
character offsets (required to align annotations with the source text), and a
trainable Byte-Pair Encoding subword tokenizer in the style of
Sennrich et al. (2016).
"""

from repro.text.normalize import NormalizerConfig, TextNormalizer
from repro.text.words import Token, WordTokenizer
from repro.text.vocab import Vocabulary
from repro.text.bpe import BpeTokenizer, SubwordEncoding, train_bpe

__all__ = [
    "BpeTokenizer",
    "NormalizerConfig",
    "SubwordEncoding",
    "TextNormalizer",
    "Token",
    "Vocabulary",
    "WordTokenizer",
    "train_bpe",
]
