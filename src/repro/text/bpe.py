"""Trainable Byte-Pair Encoding subword tokenizer.

Implements the subword mechanism of Sennrich et al. (2016) that the paper
relies on (Section 3.2): merges are learned greedily from corpus statistics,
and encoding applies them in learned order. Every emitted piece remembers the
index of the word it came from (``word_ids``), which is what lets the weak
supervision pipeline project word-level IOB labels onto subword pieces and
back (see ``repro.core.alignment``).

Pieces use an explicit end-of-word marker (``</w>``) appended to the final
character of each word, so decoding is exact and unknown words degrade
gracefully to character pieces instead of a single ``<unk>``.
"""

from __future__ import annotations

import dataclasses
import json
import threading
from collections import Counter, OrderedDict
from collections.abc import Iterable, Sequence
from pathlib import Path

from repro.text.vocab import Vocabulary

END_OF_WORD = "</w>"


@dataclasses.dataclass(frozen=True)
class SubwordEncoding:
    """The result of encoding a word sequence into subword pieces.

    Attributes:
        pieces: subword strings, e.g. ``["redu", "ce</w>", "20%</w>"]``.
        ids: vocabulary ids, aligned with ``pieces``.
        word_ids: for each piece, the index of the source word it belongs to.
    """

    pieces: tuple[str, ...]
    ids: tuple[int, ...]
    word_ids: tuple[int, ...]

    def __post_init__(self) -> None:
        if not (len(self.pieces) == len(self.ids) == len(self.word_ids)):
            raise ValueError("pieces, ids and word_ids must be parallel")

    def __len__(self) -> int:
        return len(self.pieces)


def _word_to_symbols(word: str) -> tuple[str, ...]:
    """Split a word into its initial symbol sequence (chars + eow marker)."""
    if not word:
        raise ValueError("cannot encode an empty word")
    chars = list(word)
    chars[-1] += END_OF_WORD
    return tuple(chars)


def _count_pairs(
    word_symbols: dict[tuple[str, ...], int],
) -> Counter[tuple[str, str]]:
    pairs: Counter[tuple[str, str]] = Counter()
    for symbols, count in word_symbols.items():
        for left, right in zip(symbols, symbols[1:]):
            pairs[(left, right)] += count
    return pairs


def _merge_symbols(
    symbols: tuple[str, ...], pair: tuple[str, str]
) -> tuple[str, ...]:
    merged: list[str] = []
    i = 0
    while i < len(symbols):
        if (
            i + 1 < len(symbols)
            and symbols[i] == pair[0]
            and symbols[i + 1] == pair[1]
        ):
            merged.append(symbols[i] + symbols[i + 1])
            i += 2
        else:
            merged.append(symbols[i])
            i += 1
    return tuple(merged)


def train_bpe(
    words: Iterable[str],
    num_merges: int = 1000,
    min_pair_count: int = 2,
) -> list[tuple[str, str]]:
    """Learn a ranked list of BPE merges from a word stream.

    Args:
        words: corpus word stream (duplicates matter — they are counted).
        num_merges: maximum number of merges to learn.
        min_pair_count: stop once the most frequent pair falls below this.

    Returns:
        Merges in learned (priority) order.
    """
    word_counts = Counter(word for word in words if word)
    word_symbols: dict[tuple[str, ...], int] = {
        _word_to_symbols(word): count for word, count in word_counts.items()
    }
    merges: list[tuple[str, str]] = []
    for _ in range(num_merges):
        pairs = _count_pairs(word_symbols)
        if not pairs:
            break
        # Deterministic tie-break: highest count, then lexicographic.
        best_pair, best_count = max(
            pairs.items(), key=lambda item: (item[1], item[0])
        )
        if best_count < min_pair_count:
            break
        merges.append(best_pair)
        word_symbols = {
            _merge_symbols(symbols, best_pair): count
            for symbols, count in word_symbols.items()
        }
    return merges


class BpeTokenizer:
    """Applies learned BPE merges and maps pieces to vocabulary ids.

    Construct via :meth:`train` (learn merges + build vocabulary from a
    corpus) or directly from a merge list. BPE is deterministic per word and
    report corpora repeat words heavily, so encoding memoizes ``word ->
    (pieces, ids)`` in a bounded LRU (``cache_size`` entries); hit/miss
    counters are exposed via :meth:`cache_info` for throughput reporting.
    """

    def __init__(
        self,
        merges: Sequence[tuple[str, str]],
        vocab: Vocabulary | None = None,
        cache_size: int = 65536,
    ) -> None:
        if cache_size <= 0:
            raise ValueError("cache_size must be positive")
        self.merges = [tuple(merge) for merge in merges]
        self._merge_ranks: dict[tuple[str, str], int] = {
            tuple(merge): rank for rank, merge in enumerate(self.merges)
        }
        self.cache_size = cache_size
        self._word_cache: OrderedDict[
            str, tuple[tuple[str, ...], tuple[int, ...]]
        ] = OrderedDict()
        # Concurrent serving workers share one tokenizer; the OrderedDict
        # reorder/evict operations are not atomic, so every cache touch
        # (including the hit/miss counters) happens under this lock.
        self._cache_lock = threading.Lock()
        self._cache_hits = 0
        self._cache_misses = 0
        if vocab is None:
            vocab = self._build_vocab_from_merges()
        self.vocab = vocab

    def __getstate__(self) -> dict:
        # A tokenizer crossing a process boundary (parallel shard workers)
        # ships its merges/vocab but starts with a cold cache and a fresh
        # lock — caches are value-transparent, so results are unaffected.
        state = self.__dict__.copy()
        del state["_cache_lock"]
        state["_word_cache"] = OrderedDict()
        state["_cache_hits"] = 0
        state["_cache_misses"] = 0
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._cache_lock = threading.Lock()

    # -- construction -----------------------------------------------------

    @classmethod
    def train(
        cls,
        words: Iterable[str],
        num_merges: int = 1000,
        min_pair_count: int = 2,
    ) -> "BpeTokenizer":
        """Learn merges from ``words`` and build the piece vocabulary."""
        word_list = [word for word in words if word]
        merges = train_bpe(word_list, num_merges, min_pair_count)
        tokenizer = cls(merges, vocab=None)
        # Extend the vocabulary with every piece observed on the training
        # corpus, so frequent whole words unreachable via merge products
        # (single-character words etc.) are still in-vocabulary.
        pieces: list[str] = []
        seen: set[str] = set(tokenizer.vocab.tokens)
        for word in word_list:
            for piece in tokenizer.encode_word(word):
                if piece not in seen:
                    seen.add(piece)
                    pieces.append(piece)
        tokenizer.vocab = Vocabulary(tokenizer._base_pieces() + pieces)
        # Cached ids were resolved against the pre-extension vocabulary.
        tokenizer.clear_cache()
        return tokenizer

    def _base_pieces(self) -> list[str]:
        """Alphabet pieces + merge products, deterministically ordered."""
        alphabet: list[str] = []
        seen: set[str] = set()
        for left, right in self.merges:
            for symbol in (left, right, left + right):
                if symbol not in seen:
                    seen.add(symbol)
                    alphabet.append(symbol)
        # Cover printable ASCII as single-char fallbacks (with and without
        # the end-of-word marker) so any input degrades to char pieces.
        for code in range(32, 127):
            for symbol in (chr(code), chr(code) + END_OF_WORD):
                if symbol not in seen:
                    seen.add(symbol)
                    alphabet.append(symbol)
        return alphabet

    def _build_vocab_from_merges(self) -> Vocabulary:
        return Vocabulary(self._base_pieces())

    # -- encoding ----------------------------------------------------------

    def _apply_merges(self, word: str) -> tuple[str, ...]:
        symbols = _word_to_symbols(word)
        while len(symbols) > 1:
            candidate_ranks = [
                (self._merge_ranks.get((left, right)), index)
                for index, (left, right) in enumerate(
                    zip(symbols, symbols[1:])
                )
            ]
            applicable = [
                (rank, index)
                for rank, index in candidate_ranks
                if rank is not None
            ]
            if not applicable:
                break
            rank, __ = min(applicable)
            pair = self.merges[rank]
            symbols = _merge_symbols(symbols, pair)
        return symbols

    def _encode_word_cached(
        self, word: str
    ) -> tuple[tuple[str, ...], tuple[int, ...]]:
        with self._cache_lock:
            cached = self._word_cache.get(word)
            if cached is not None:
                self._word_cache.move_to_end(word)
                self._cache_hits += 1
                return cached
        # Compute fully before touching the cache or its counters: a fault
        # raised mid-encode (e.g. an injected error, or a vocabulary swap)
        # must leave no partial entry and no phantom miss behind. Two
        # threads may both miss and compute the same word — the entries
        # are identical, so last-writer-wins is harmless.
        pieces = self._apply_merges(word)
        entry = (pieces, tuple(self.vocab.id_of(piece) for piece in pieces))
        with self._cache_lock:
            self._cache_misses += 1
            self._word_cache[word] = entry
            if len(self._word_cache) > self.cache_size:
                self._word_cache.popitem(last=False)
        return entry

    def encode_word(self, word: str) -> tuple[str, ...]:
        """Encode one word into subword piece strings."""
        return self._encode_word_cached(word)[0]

    def encode(self, words: Sequence[str]) -> SubwordEncoding:
        """Encode a word sequence, tracking piece -> word provenance."""
        pieces: list[str] = []
        ids: list[int] = []
        word_ids: list[int] = []
        for word_index, word in enumerate(words):
            word_pieces, word_piece_ids = self._encode_word_cached(word)
            pieces.extend(word_pieces)
            ids.extend(word_piece_ids)
            word_ids.extend([word_index] * len(word_pieces))
        return SubwordEncoding(tuple(pieces), tuple(ids), tuple(word_ids))

    # -- cache bookkeeping ---------------------------------------------------

    def clear_cache(self) -> None:
        """Drop memoized encodings (required after replacing ``vocab``)."""
        with self._cache_lock:
            self._word_cache.clear()
            self._cache_hits = 0
            self._cache_misses = 0

    def cache_info(self) -> dict[str, int]:
        """Hit/miss counters and occupancy of the per-word LRU memo."""
        with self._cache_lock:
            return {
                "hits": self._cache_hits,
                "misses": self._cache_misses,
                "size": len(self._word_cache),
                "maxsize": self.cache_size,
            }

    def decode_word(self, pieces: Sequence[str]) -> str:
        """Reassemble a word from its pieces (inverse of encode_word)."""
        return "".join(pieces).replace(END_OF_WORD, "")

    def decode(self, encoding: SubwordEncoding) -> list[str]:
        """Reassemble the word sequence from an encoding."""
        words: list[str] = []
        current: list[str] = []
        current_word = None
        for piece, word_id in zip(encoding.pieces, encoding.word_ids):
            if current_word is None:
                current_word = word_id
            if word_id != current_word:
                words.append(self.decode_word(current))
                current = []
                current_word = word_id
            current.append(piece)
        if current:
            words.append(self.decode_word(current))
        return words

    # -- persistence --------------------------------------------------------

    def save(self, path: str | Path) -> None:
        payload = {
            "merges": [list(merge) for merge in self.merges],
            "vocab": self.vocab.tokens[5:],  # strip special tokens
        }
        Path(path).write_text(json.dumps(payload), encoding="utf-8")

    @classmethod
    def load(cls, path: str | Path) -> "BpeTokenizer":
        """Restore a tokenizer saved with :meth:`save`.

        A missing, unreadable, or malformed file raises a typed
        :class:`~repro.runtime.errors.ArtifactError` (lazy import — this
        module sits below the runtime package in the import graph).
        """
        from repro.runtime.errors import ArtifactError

        path = Path(path)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except OSError as error:
            raise ArtifactError(
                f"cannot read tokenizer: {error}", path=str(path)
            ) from error
        except ValueError as error:
            raise ArtifactError(
                f"tokenizer is not valid JSON ({error})", path=str(path)
            ) from error
        if (
            not isinstance(payload, dict)
            or not isinstance(payload.get("merges"), list)
            or not isinstance(payload.get("vocab"), list)
        ):
            raise ArtifactError(
                "tokenizer payload must be a JSON object with "
                "'merges' and 'vocab' lists",
                path=str(path),
            )
        try:
            merges = [
                (str(left), str(right))
                for left, right in payload["merges"]
            ]
        except (TypeError, ValueError) as error:
            raise ArtifactError(
                f"tokenizer merge table is malformed: {error}",
                path=str(path),
            ) from error
        return cls(merges, Vocabulary(payload["vocab"]))
