"""Word-level tokenization with character offsets.

Algorithm 1 in the paper aligns tokenized annotation values against the
tokenized objective text. For that alignment to be projected back onto the
source string (so extracted values can be returned verbatim), every token must
carry its character span. Table 3 of the paper shows the expected granularity:
``co-founded`` becomes ``co``, ``-``, ``founded`` and ``net-zero`` becomes
``net``, ``-``, ``zero`` — i.e. punctuation splits words.
"""

from __future__ import annotations

import dataclasses
import re
from collections.abc import Iterator

# A token is a run of alphanumerics (possibly with internal digits, e.g.
# "CO2"), a number with optional decimal part, or a single punctuation mark.
_TOKEN_RE = re.compile(
    r"""
    \d+(?:[.,]\d+)*%?      # numbers: 2040, 8.1%, 1,000
    | [A-Za-z]+\d*         # words, incl. trailing digits: CO2, SBTi2
    | [^\sA-Za-z\d]        # any single punctuation / symbol character
    """,
    re.VERBOSE,
)


@dataclasses.dataclass(frozen=True)
class Token:
    """A word-level token with its span in the source text.

    Attributes:
        text: the token surface form.
        start: index of the first character in the source string.
        end: index one past the last character (``source[start:end] == text``).
    """

    text: str
    start: int
    end: int

    def __post_init__(self) -> None:
        if self.start < 0 or self.end < self.start:
            raise ValueError(f"invalid token span [{self.start}, {self.end})")


class WordTokenizer:
    """Splits text into word-level tokens while retaining offsets.

    The tokenizer is deterministic and lossless with respect to non-space
    characters: concatenating the token texts with the gaps from the source
    string reconstructs the source exactly.

    Example:
        >>> [t.text for t in WordTokenizer().tokenize("net-zero by 2040.")]
        ['net', '-', 'zero', 'by', '2040', '.']
    """

    def __init__(self, split_percent: bool = True) -> None:
        # When True, "20%" tokenizes as ["20%"] (kept together: percent
        # amounts are atomic annotation values in the paper's Table 1).
        self.split_percent = split_percent

    def tokenize(self, text: str) -> list[Token]:
        """Tokenize ``text`` into :class:`Token` objects with offsets."""
        return list(self.iter_tokens(text))

    def iter_tokens(self, text: str) -> Iterator[Token]:
        for match in _TOKEN_RE.finditer(text):
            yield Token(match.group(), match.start(), match.end())

    def words(self, text: str) -> list[str]:
        """Tokenize and return only the surface forms."""
        return [token.text for token in self.iter_tokens(text)]


#: Shared default instance (tokenization is stateless).
DEFAULT_WORD_TOKENIZER = WordTokenizer()
