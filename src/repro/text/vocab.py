"""Vocabulary: a bidirectional token <-> id mapping with special tokens."""

from __future__ import annotations

import json
from collections.abc import Iterable, Sequence
from pathlib import Path

PAD_TOKEN = "<pad>"
UNK_TOKEN = "<unk>"
CLS_TOKEN = "<cls>"
SEP_TOKEN = "<sep>"
MASK_TOKEN = "<mask>"

SPECIAL_TOKENS = (PAD_TOKEN, UNK_TOKEN, CLS_TOKEN, SEP_TOKEN, MASK_TOKEN)


class Vocabulary:
    """An immutable-after-construction token/id mapping.

    Special tokens always occupy the first ids, in the order of
    :data:`SPECIAL_TOKENS`, so ``pad_id == 0`` everywhere in the code base.
    """

    def __init__(self, tokens: Iterable[str] = ()) -> None:
        self._token_to_id: dict[str, int] = {}
        self._id_to_token: list[str] = []
        for token in SPECIAL_TOKENS:
            self._add(token)
        for token in tokens:
            self._add(token)

    def _add(self, token: str) -> int:
        if token in self._token_to_id:
            return self._token_to_id[token]
        token_id = len(self._id_to_token)
        self._token_to_id[token] = token_id
        self._id_to_token.append(token)
        return token_id

    # -- lookups ---------------------------------------------------------

    def id_of(self, token: str) -> int:
        """Return the id of ``token``, or the <unk> id if unknown."""
        return self._token_to_id.get(token, self.unk_id)

    def token_of(self, token_id: int) -> str:
        if not 0 <= token_id < len(self._id_to_token):
            raise IndexError(f"token id {token_id} out of range")
        return self._id_to_token[token_id]

    def encode(self, tokens: Sequence[str]) -> list[int]:
        return [self.id_of(token) for token in tokens]

    def decode(self, ids: Sequence[int]) -> list[str]:
        return [self.token_of(token_id) for token_id in ids]

    def __contains__(self, token: str) -> bool:
        return token in self._token_to_id

    def __len__(self) -> int:
        return len(self._id_to_token)

    # -- special token ids ------------------------------------------------

    @property
    def pad_id(self) -> int:
        return self._token_to_id[PAD_TOKEN]

    @property
    def unk_id(self) -> int:
        return self._token_to_id[UNK_TOKEN]

    @property
    def cls_id(self) -> int:
        return self._token_to_id[CLS_TOKEN]

    @property
    def sep_id(self) -> int:
        return self._token_to_id[SEP_TOKEN]

    @property
    def mask_id(self) -> int:
        return self._token_to_id[MASK_TOKEN]

    @property
    def tokens(self) -> list[str]:
        """All tokens, including specials, in id order."""
        return list(self._id_to_token)

    # -- persistence -------------------------------------------------------

    def save(self, path: str | Path) -> None:
        payload = {"tokens": self._id_to_token[len(SPECIAL_TOKENS):]}
        Path(path).write_text(json.dumps(payload), encoding="utf-8")

    @classmethod
    def load(cls, path: str | Path) -> "Vocabulary":
        """Restore a vocabulary saved with :meth:`save`.

        A missing, unreadable, or malformed file raises a typed
        :class:`~repro.runtime.errors.ArtifactError` (lazy import — this
        module sits below the runtime package in the import graph).
        """
        from repro.runtime.errors import ArtifactError

        path = Path(path)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except OSError as error:
            raise ArtifactError(
                f"cannot read vocabulary: {error}", path=str(path)
            ) from error
        except ValueError as error:
            raise ArtifactError(
                f"vocabulary is not valid JSON ({error})", path=str(path)
            ) from error
        tokens = payload.get("tokens") if isinstance(payload, dict) else None
        if not isinstance(tokens, list) or not all(
            isinstance(token, str) for token in tokens
        ):
            raise ArtifactError(
                "vocabulary payload must be a JSON object with a "
                "'tokens' list of strings",
                path=str(path),
            )
        return cls(tokens)
