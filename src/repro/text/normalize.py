"""GoalSpotter-style text normalization.

The paper (Section 3.2) follows the preprocessing strategy of GoalSpotter:
input texts are normalized and unnecessary characters are removed to reduce
superficial noise before subword tokenization. This module implements that
normalization step as a small, configurable, pure function over strings.

The normalizer is deliberately conservative: downstream components align
annotation values against the *normalized* objective text, so normalization
must be deterministic and must not reorder or drop word-internal characters.
"""

from __future__ import annotations

import dataclasses
import re
import unicodedata

# Unicode punctuation that is folded to its plain-ASCII equivalent. Real
# sustainability reports are PDF extractions full of typographic dashes and
# quotes; folding them makes annotation values match the objective text.
_CHAR_FOLDS = {
    "‐": "-",  # hyphen
    "‑": "-",  # non-breaking hyphen
    "‒": "-",  # figure dash
    "–": "-",  # en dash
    "—": "-",  # em dash
    "―": "-",  # horizontal bar
    "‘": "'",
    "’": "'",
    "‚": "'",
    "“": '"',
    "”": '"',
    "„": '"',
    " ": " ",  # no-break space
    " ": " ",
    " ": " ",
    "•": " ",  # bullet
    "·": " ",  # middle dot
    "﻿": "",  # BOM
    "­": "",  # soft hyphen
}

_WHITESPACE_RE = re.compile(r"\s+")
_CONTROL_RE = re.compile(r"[\x00-\x08\x0b\x0c\x0e-\x1f\x7f]")


@dataclasses.dataclass(frozen=True)
class NormalizerConfig:
    """Configuration for :class:`TextNormalizer`.

    Attributes:
        fold_unicode_punctuation: replace typographic dashes/quotes/spaces
            with their ASCII equivalents.
        collapse_whitespace: replace runs of whitespace with a single space
            and strip leading/trailing whitespace.
        strip_control_characters: drop ASCII control characters.
        nfkc: apply Unicode NFKC normalization (compatibility decomposition,
            e.g. ligatures and full-width forms).
        lowercase: lowercase the text. Off by default — casing is an
            orthographic feature used by the CRF baseline and helps the
            transformer spot proper nouns.
    """

    fold_unicode_punctuation: bool = True
    collapse_whitespace: bool = True
    strip_control_characters: bool = True
    nfkc: bool = True
    lowercase: bool = False


class TextNormalizer:
    """Deterministic text normalizer used across the whole system.

    Example:
        >>> TextNormalizer()("Reduce  CO₂ emissions – by 20% ")
        'Reduce CO2 emissions - by 20%'
    """

    def __init__(self, config: NormalizerConfig | None = None) -> None:
        self.config = config or NormalizerConfig()

    def __call__(self, text: str) -> str:
        return self.normalize(text)

    def normalize(self, text: str) -> str:
        """Return the normalized form of ``text``."""
        if self.config.nfkc:
            text = unicodedata.normalize("NFKC", text)
        if self.config.fold_unicode_punctuation:
            text = text.translate(str.maketrans(_CHAR_FOLDS))
        if self.config.strip_control_characters:
            text = _CONTROL_RE.sub(" ", text)
        if self.config.collapse_whitespace:
            text = _WHITESPACE_RE.sub(" ", text).strip()
        if self.config.lowercase:
            text = text.lower()
        return text


#: Module-level default instance; normalization is stateless so sharing is safe.
DEFAULT_NORMALIZER = TextNormalizer()
