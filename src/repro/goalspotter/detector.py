"""Objective detection: text classification over report blocks.

Follows GoalSpotter's formulation: each text block is classified as
*objective* or *noise* with a fine-tuned transformer sequence classifier
(mean-pooled encoder states + linear head on our substrate).
"""

from __future__ import annotations

import dataclasses
import threading
from collections.abc import Sequence

import numpy as np

from repro.models.sequence_classifier import SequenceClassifier
from repro.models.training import FineTuneConfig, fit_sequence_classifier
from repro.nn.encoder import EncoderConfig
from repro.runtime.profiling import PerfCounters, RunStats
from repro.runtime.rescache import ResultCache
from repro.text.bpe import BpeTokenizer
from repro.text.normalize import TextNormalizer
from repro.text.words import WordTokenizer

NOISE, OBJECTIVE = 0, 1


@dataclasses.dataclass(frozen=True)
class DetectorConfig:
    """Detector hyperparameters (small encoder; blocks are short)."""

    dim: int = 64
    num_layers: int = 2
    num_heads: int = 4
    ffn_dim: int = 128
    max_len: int = 96
    dropout: float = 0.1
    num_merges: int = 500
    finetune: FineTuneConfig = dataclasses.field(
        default_factory=lambda: FineTuneConfig(epochs=4, learning_rate=1e-3)
    )
    threshold: float = 0.5
    seed: int = 13
    #: Content-addressed result cache over ``predict_proba`` (0 = off).
    result_cache_capacity: int = 0
    #: Seed of the cache's deterministic random-replacement eviction.
    result_cache_seed: int = 0

    def __post_init__(self) -> None:
        if self.result_cache_capacity < 0:
            raise ValueError("result_cache_capacity must be >= 0")


class ObjectiveDetector:
    """Binary classifier: does a text block contain an objective?"""

    def __init__(self, config: DetectorConfig | None = None) -> None:
        self.config = config or DetectorConfig()
        self.normalizer = TextNormalizer()
        self.word_tokenizer = WordTokenizer()
        self.tokenizer: BpeTokenizer | None = None
        self.model: SequenceClassifier | None = None
        #: Runtime observability from the last *completed* ``predict_proba``
        #: call (last-writer-wins under concurrency; see total_run_stats).
        self.last_run_stats: RunStats | None = None
        #: Merged stats across every ``predict_proba`` call (lock-guarded).
        self.total_run_stats = RunStats()
        #: Content-addressed probability-row cache (None while capacity
        #: is 0). Built eagerly — DetectorConfig is fixed at construction.
        self.result_cache: ResultCache | None = (
            ResultCache(
                capacity=self.config.result_cache_capacity,
                seed=self.config.result_cache_seed,
            )
            if self.config.result_cache_capacity > 0
            else None
        )
        self._stats_lock = threading.Lock()

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        del state["_stats_lock"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._stats_lock = threading.Lock()

    def build_model(
        self, encoder_config: EncoderConfig | None = None
    ) -> SequenceClassifier:
        """A freshly initialized classifier shaped for this detector.

        Requires a fitted tokenizer (the vocabulary fixes the embedding
        shape). Used by :meth:`fit` and by the parallel runtime's model
        broadcast to rebuild the module skeleton before loading state;
        ``encoder_config`` overrides the config-derived encoder geometry.
        """
        if self.tokenizer is None:
            raise RuntimeError("tokenizer is not fitted; call fit() first")
        rng = np.random.default_rng(self.config.seed)
        if encoder_config is None:
            encoder_config = EncoderConfig(
                vocab_size=len(self.tokenizer.vocab),
                dim=self.config.dim,
                num_layers=self.config.num_layers,
                num_heads=self.config.num_heads,
                ffn_dim=self.config.ffn_dim,
                max_len=self.config.max_len,
                dropout=self.config.dropout,
            )
        return SequenceClassifier(encoder_config, 2, rng)

    def _encode(self, texts: Sequence[str]) -> list[list[int]]:
        assert self.tokenizer is not None
        sequences: list[list[int]] = []
        for text in texts:
            words = self.word_tokenizer.words(self.normalizer(text))
            if not words:
                words = ["."]
            sequences.append(list(self.tokenizer.encode(words).ids))
        return sequences

    def fit(
        self, texts: Sequence[str], labels: Sequence[int]
    ) -> "ObjectiveDetector":
        """Train on blocks with binary labels (1 = objective)."""
        if len(texts) != len(labels):
            raise ValueError("texts and labels must be parallel")
        if not texts:
            raise ValueError("cannot fit a detector on no blocks")
        corpus = (
            word
            for text in texts
            for word in self.word_tokenizer.words(self.normalizer(text))
        )
        self.tokenizer = BpeTokenizer.train(
            corpus, num_merges=self.config.num_merges
        )
        self.model = self.build_model()
        fit_sequence_classifier(
            self.model,
            self._encode(texts),
            list(labels),
            self.config.finetune,
        )
        return self

    def predict_proba(self, texts: Sequence[str]) -> np.ndarray:
        """P(objective) for each block (length-bucketed scoring)."""
        if self.model is None:
            raise RuntimeError("detector is not fitted; call fit() first")
        counters = PerfCounters()
        with counters.timer("wall_seconds"):
            with counters.timer("tokenize_seconds"):
                sequences = self._encode(texts)
            with counters.timer("model_seconds"):
                probabilities = self.model.predict_proba(
                    sequences, counters=counters, cache=self.result_cache
                )
        stats = RunStats.from_counters(
            counters, wall_seconds=counters.get("wall_seconds")
        )
        with self._stats_lock:
            self.last_run_stats = stats
            self.total_run_stats = self.total_run_stats.merge(stats)
        return probabilities[:, OBJECTIVE]

    def predict(self, texts: Sequence[str]) -> np.ndarray:
        """Boolean objective mask for each block."""
        return self.predict_proba(texts) >= self.config.threshold
