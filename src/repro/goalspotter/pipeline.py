"""The integrated GoalSpotter pipeline: detect -> extract -> record.

This is the system of the paper's Figure 1/2 and Section 5: reports go in,
structured objective records (text + five key details + provenance) come
out, ready for the structured database (:mod:`repro.storage`).

The pipeline is fault-tolerant (see ``DESIGN.md`` section "Failure
model"): ``process_reports`` takes an ``on_error`` policy —

* ``"raise"`` (default): strict input validation, first failure aborts;
* ``"skip"``: failed documents land in the :class:`QuarantineQueue` with
  their error, stage and retry history; the rest of the batch survives;
* ``"degrade"``: like ``"skip"``, but a document whose transformer
  extraction fails irrecoverably walks the degradation ladder — the CRF
  fallback extractor first, flagged-empty records last — so every
  document still yields records (``ExtractedRecord.status`` says how).

The clean path stays the single corpus-batched run of PR 1; per-document
isolation (with retries, per-stage circuit breakers, deadlines and NaN
guards) only engages after the batched run fails.
"""

from __future__ import annotations

import contextlib
import dataclasses
from collections.abc import Sequence

import numpy as np

from repro.core.base import DetailExtractor
from repro.core.schema import SUSTAINABILITY_FIELDS
from repro.core.segmentation import segment_objectives
from repro.datasets.reports import SustainabilityReport
from repro.goalspotter.detector import ObjectiveDetector
from repro.nn.module import numeric_guard
from repro.runtime.errors import InputError, ReproError
from repro.runtime.profiling import PerfCounters
from repro.runtime.resilience import (
    CircuitBreaker,
    FaultInjector,
    QuarantineQueue,
    RetryPolicy,
    run_stage,
    sanitize_report,
    validate_report,
)

#: Valid ``on_error`` policies.
ON_ERROR_POLICIES = ("raise", "skip", "degrade")

#: ``ExtractedRecord.status`` values, in degradation-ladder order.
STATUS_OK = "ok"  # transformer extraction succeeded
STATUS_DEGRADED = "degraded"  # CRF fallback extraction
STATUS_FAILED = "failed"  # flagged-empty details


@dataclasses.dataclass(frozen=True)
class ExtractedRecord:
    """One structured row for the objectives database."""

    company: str
    report_id: str
    page: int
    objective: str
    details: dict[str, str]
    score: float  # detector confidence
    status: str = STATUS_OK  # ok | degraded | failed (degradation ladder)
    reporting_year: int | None = None  # year provenance (multi-year panels)

    def as_row(self, fields: Sequence[str]) -> list[str]:
        return [self.company, self.objective] + [
            self.details.get(field, "") for field in fields
        ]


def record_to_payload(record: ExtractedRecord) -> dict:
    """JSON-ready view of a record for the run journal.

    Field order and value types survive a compact-JSON round trip
    exactly (``details`` keeps insertion order, ``score`` uses Python's
    shortest-repr float coding), so
    ``record_from_payload(json.loads(json.dumps(record_to_payload(r))))``
    equals ``r`` — the property the durable-run bitwise guarantee rests
    on.
    """
    return dataclasses.asdict(record)


def record_from_payload(payload: dict) -> ExtractedRecord:
    """Rebuild a record persisted by :func:`record_to_payload`."""
    return ExtractedRecord(
        company=payload["company"],
        report_id=payload["report_id"],
        page=int(payload["page"]),
        objective=payload["objective"],
        details=dict(payload["details"]),
        score=float(payload["score"]),
        status=payload.get("status", STATUS_OK),
        reporting_year=payload.get("reporting_year"),
    )


class GoalSpotter:
    """Detection + detail extraction over sustainability reports.

    With ``segment=True`` the paper's future-work *objective segmentation*
    is enabled: each detected block is split into candidate objective
    clauses (:mod:`repro.core.segmentation`) and details are extracted per
    clause, yielding one record per clause.

    Resilience knobs (all optional; the defaults reproduce the strict
    pre-resilience behaviour):

    Args:
        fallback_extractor: degradation-ladder step for ``"degrade"`` mode
            (typically a trained :class:`repro.crf.CrfDetailExtractor`).
        retry_policy: per-stage retry/backoff/deadline policy.
        fault_injector: deterministic chaos hooks for the test suite; the
            pipeline checks in at the ``"detect"``/``"extract"`` stages.
        on_error: default policy for :meth:`process_reports`.
        breaker_threshold / breaker_recovery_time: per-stage circuit
            breaker configuration (consecutive failures to trip, seconds
            until a half-open trial).
        max_block_chars: input-validation bound on block length.
        workers: default process count for :meth:`process_reports`
            (``1`` = in-process; ``"auto"``/``None`` = one per CPU core).
            Parallel runs are bitwise-identical to sequential ones — see
            :mod:`repro.runtime.parallel`.
    """

    def __init__(
        self,
        detector: ObjectiveDetector,
        extractor: DetailExtractor,
        segment: bool = False,
        *,
        fallback_extractor: DetailExtractor | None = None,
        retry_policy: RetryPolicy | None = None,
        fault_injector: FaultInjector | None = None,
        on_error: str = "raise",
        breaker_threshold: int = 8,
        breaker_recovery_time: float = 0.0,
        max_block_chars: int = 50_000,
        workers: int | str | None = 1,
    ) -> None:
        if on_error not in ON_ERROR_POLICIES:
            raise ValueError(
                f"unknown on_error {on_error!r}; use {ON_ERROR_POLICIES}"
            )
        self.detector = detector
        self.extractor = extractor
        self.segment = segment
        self.fallback_extractor = fallback_extractor
        self.retry_policy = retry_policy or RetryPolicy()
        self.fault_injector = fault_injector
        self.on_error = on_error
        self.max_block_chars = max_block_chars
        self.workers = workers
        #: Irrecoverably failed documents (persists across runs; drain()).
        self.quarantine = QuarantineQueue()
        self._breakers: dict[str, CircuitBreaker] = {}
        self._breaker_threshold = breaker_threshold
        self._breaker_recovery_time = breaker_recovery_time
        #: Stage timings and counts from the last ``process_reports`` call.
        self.last_run_stats: dict | None = None

    @classmethod
    def from_task_model(
        cls, model, detector: ObjectiveDetector, **kwargs
    ) -> "GoalSpotter":
        """Build a pipeline whose extraction stage is a registry task model.

        Only extraction-kind task models fit the detail-extraction slot;
        classification models raise
        :class:`~repro.runtime.errors.TaskRegistryError`.
        """
        from repro.runtime.errors import TaskRegistryError

        if getattr(model, "kind", "extraction") != "extraction":
            raise TaskRegistryError(
                "GoalSpotter needs an extraction-kind task model; got "
                f"kind {getattr(model, 'kind', None)!r}"
            )
        return cls(detector, getattr(model, "backend", model), **kwargs)

    # -- public API ---------------------------------------------------------

    def process_report(
        self, report: SustainabilityReport, on_error: str | None = None
    ) -> list[ExtractedRecord]:
        """Run the full pipeline on one report."""
        return self.process_reports([report], on_error=on_error)

    def process_reports(
        self,
        reports: Sequence[SustainabilityReport],
        on_error: str | None = None,
        *,
        workers: int | str | None = None,
    ) -> list[ExtractedRecord]:
        """Run the full pipeline on a report corpus (batched inference).

        ``on_error`` overrides the instance default for this call; see the
        class docstring for the policy semantics. ``workers`` overrides
        the instance default: more than one worker dispatches to the
        sharded multiprocessing runtime (:mod:`repro.runtime.parallel`),
        which is bitwise-identical to the sequential path.
        """
        mode = on_error if on_error is not None else self.on_error
        if mode not in ON_ERROR_POLICIES:
            raise ValueError(
                f"unknown on_error {mode!r}; use {ON_ERROR_POLICIES}"
            )
        if workers is None:
            workers = self.workers
        if workers != 1:
            # Deferred import: repro.runtime.parallel needs this module.
            from repro.runtime.parallel import (
                process_reports_parallel,
                resolve_workers,
            )

            if resolve_workers(workers) > 1 and len(reports) > 1:
                return process_reports_parallel(
                    self, reports, workers=workers, on_error=mode
                )
        counters = PerfCounters()
        quarantined_before = len(self.quarantine)

        if mode == "raise":
            for report in reports:
                validate_report(report, self.max_block_chars)
            usable = list(reports)
        else:
            usable = []
            for report in reports:
                clean = sanitize_report(
                    report, self.max_block_chars, counters
                )
                if not any(page.blocks for page in clean.pages):
                    error = InputError(
                        "report has no usable text blocks",
                        stage="validate",
                        report_id=clean.report_id,
                    )
                    self.quarantine.put(clean, "validate", error)
                    continue
                usable.append(clean)

        fast_path = True
        with counters.timer("wall_seconds"):
            if mode == "raise":
                records = self._run_corpus(usable, counters, guard=False)
            else:
                # Scratch counters: a fast path that dies mid-run must not
                # leak partial block/timing counts into the real stats.
                scratch = PerfCounters()
                try:
                    records = self._run_corpus(usable, scratch, guard=True)
                except Exception:
                    # Batched fast path died: re-run with per-document
                    # isolation, retries, and the degradation ladder.
                    fast_path = False
                    counters.add("fast_path_failures")
                    records = []
                    for report in usable:
                        records.extend(
                            self._process_document(report, mode, counters)
                        )
                else:
                    for name, value in scratch.as_dict().items():
                        counters.add(name, value)

        if mode == "raise" and not records and counters.get("blocks") == 0:
            self.last_run_stats = None
            return records
        self._finalize_stats(
            counters,
            mode=mode,
            records=records,
            fast_path=fast_path,
            quarantined=len(self.quarantine) - quarantined_before,
        )
        return records

    def process_reports_durable(
        self,
        reports: Sequence[SustainabilityReport],
        run_dir,
        *,
        on_error: str | None = None,
        workers: int = 1,
        resume: bool = True,
        segment_items: int = 4,
        **kwargs,
    ) -> list[ExtractedRecord]:
        """Journaled corpus run: crash-safe, exactly-once, resumable.

        Like :meth:`process_reports`, but every completed segment of
        ~``segment_items`` reports commits to a crash-safe run journal
        in ``run_dir`` (:mod:`repro.runtime.journal`); re-running with
        the same directory and ``resume=True`` skips committed work and
        produces records — and quarantine entries — bitwise-identical to
        an uninterrupted run. ``workers>1`` executes under the
        lease-supervised pool (:class:`repro.runtime.supervisor.
        RunSupervisor`); extra ``kwargs`` pass through to
        :func:`repro.runtime.supervisor.run_durable_reports`
        (``config``, ``fault_injector``, ``drain_event``, ...).
        """
        # Deferred import: repro.runtime.supervisor needs this module.
        from repro.runtime.supervisor import run_durable_reports

        result = run_durable_reports(
            self,
            reports,
            run_dir,
            on_error=on_error,
            workers=workers,
            resume=resume,
            segment_items=segment_items,
            **kwargs,
        )
        records = [
            record_from_payload(payload) for payload in result.payloads
        ]
        self.last_run_stats = {
            "records": len(records),
            "on_error": on_error if on_error is not None else self.on_error,
            "durable": result.stats,
        }
        return records

    # -- batched fast path --------------------------------------------------

    def _guard(self, guard: bool):
        return numeric_guard() if guard else contextlib.nullcontext()

    def _run_corpus(
        self,
        reports: Sequence[SustainabilityReport],
        counters: PerfCounters,
        guard: bool,
    ) -> list[ExtractedRecord]:
        """The PR 1 corpus-batched run (one detect call, one extract call)."""
        block_texts: list[str] = []
        provenance: list[tuple[str, str, int, int | None]] = []
        for report in reports:
            year = getattr(report, "reporting_year", None)
            for page_index, page in enumerate(report.pages):
                for block in page.blocks:
                    block_texts.append(block.text)
                    provenance.append(
                        (report.company, report.report_id, page_index, year)
                    )
        if not block_texts:
            return []
        counters.add("blocks", len(block_texts))
        with counters.timer("detect_seconds"), self._guard(guard):
            if self.fault_injector is not None:
                self.fault_injector.check("detect")
            scores = self.detector.predict_proba(block_texts)
        detected = scores >= self.detector.config.threshold
        counters.add("detected_blocks", int(detected.sum()))

        units, unit_block = self._segment_units(
            block_texts, np.nonzero(detected)[0]
        )
        counters.add("extraction_units", len(units))
        with counters.timer("extract_seconds"), self._guard(guard):
            if self.fault_injector is not None:
                self.fault_injector.check("extract")
            details_list = self.extractor.extract_batch(units)
        records: list[ExtractedRecord] = []
        for unit_text, block_index, details in zip(
            units, unit_block, details_list
        ):
            company, report_id, page_index, year = provenance[block_index]
            records.append(
                ExtractedRecord(
                    company=company,
                    report_id=report_id,
                    page=page_index,
                    objective=unit_text,
                    details=details,
                    score=float(scores[block_index]),
                    reporting_year=year,
                )
            )
        return records

    # -- per-document resilient path -----------------------------------------

    def _breaker(self, stage: str) -> CircuitBreaker:
        if stage not in self._breakers:
            self._breakers[stage] = CircuitBreaker(
                failure_threshold=self._breaker_threshold,
                recovery_time=self._breaker_recovery_time,
            )
        return self._breakers[stage]

    def _segment_units(
        self, block_texts: Sequence[str], detected_indices
    ) -> tuple[list[str], list[int]]:
        """Segment detected blocks into extraction units in one pass
        (one clause per unit when segmentation is on, else the block)."""
        units: list[str] = []
        unit_block: list[int] = []
        for block_index in detected_indices:
            text = block_texts[block_index]
            clauses = segment_objectives(text) if self.segment else (text,)
            for clause in clauses:
                units.append(clause)
                unit_block.append(int(block_index))
        return units, unit_block

    def _schema_fields(self) -> tuple[str, ...]:
        config = getattr(self.extractor, "config", None)
        fields = getattr(config, "fields", None) or getattr(
            self.extractor, "fields", None
        )
        return tuple(fields) if fields else SUSTAINABILITY_FIELDS

    def _process_document(
        self,
        report: SustainabilityReport,
        mode: str,
        counters: PerfCounters,
    ) -> list[ExtractedRecord]:
        """Run one document through detect -> extract with full resilience.

        Failures here never propagate: the document either yields records
        (possibly degraded/flagged) or lands in the quarantine queue.
        """
        block_texts: list[str] = []
        pages: list[int] = []
        for page_index, page in enumerate(report.pages):
            for block in page.blocks:
                block_texts.append(block.text)
                pages.append(page_index)
        if not block_texts:
            return []
        counters.add("blocks", len(block_texts))
        counters.add("documents_isolated")

        try:
            with counters.timer("detect_seconds"), self._guard(True):
                scores = run_stage(
                    lambda: self.detector.predict_proba(block_texts),
                    stage="detect",
                    policy=self.retry_policy,
                    breaker=self._breaker("detect"),
                    injector=self.fault_injector,
                    counters=counters,
                    report_id=report.report_id,
                )
        except ReproError as error:
            # No detection fallback exists, so an irrecoverable detect
            # failure quarantines the document under every policy.
            self.quarantine.put(report, "detect", error)
            return []

        detected = scores >= self.detector.config.threshold
        counters.add("detected_blocks", int(detected.sum()))
        units, unit_block = self._segment_units(
            block_texts, np.nonzero(detected)[0]
        )
        counters.add("extraction_units", len(units))
        if not units:
            return []

        status = STATUS_OK
        try:
            with counters.timer("extract_seconds"), self._guard(True):
                details_list = run_stage(
                    lambda: self.extractor.extract_batch(units),
                    stage="extract",
                    policy=self.retry_policy,
                    breaker=self._breaker("extract"),
                    injector=self.fault_injector,
                    counters=counters,
                    report_id=report.report_id,
                )
        except ReproError as error:
            if mode == "skip":
                self.quarantine.put(report, "extract", error)
                return []
            details_list, status = self._degraded_extract(
                units, report, counters
            )

        return [
            ExtractedRecord(
                company=report.company,
                report_id=report.report_id,
                page=pages[block_index],
                objective=unit_text,
                details=details,
                score=float(scores[block_index]),
                status=status,
                reporting_year=getattr(report, "reporting_year", None),
            )
            for unit_text, block_index, details in zip(
                units, unit_block, details_list
            )
        ]

    def _degraded_extract(
        self,
        units: list[str],
        report: SustainabilityReport,
        counters: PerfCounters,
    ) -> tuple[list[dict[str, str]], str]:
        """The degradation ladder: CRF fallback, then flagged-empty."""
        if self.fallback_extractor is not None:
            try:
                with counters.timer("fallback_seconds"), self._guard(True):
                    details_list = run_stage(
                        lambda: self.fallback_extractor.extract_batch(units),
                        stage="fallback_extract",
                        policy=self.retry_policy,
                        breaker=self._breaker("fallback_extract"),
                        injector=self.fault_injector,
                        counters=counters,
                        report_id=report.report_id,
                    )
                counters.add("fallback_documents")
                return details_list, STATUS_DEGRADED
            except ReproError:
                pass
        fields = self._schema_fields()
        return (
            [{field: "" for field in fields} for __ in units],
            STATUS_FAILED,
        )

    # -- observability -------------------------------------------------------

    def _finalize_stats(
        self,
        counters: PerfCounters,
        *,
        mode: str,
        records: list[ExtractedRecord],
        fast_path: bool,
        quarantined: int,
    ) -> None:
        wall = counters.get("wall_seconds")
        blocks = int(counters.get("blocks"))
        extractor_stats = getattr(self.extractor, "last_run_stats", None)
        self.last_run_stats = {
            "wall_seconds": wall,
            "detect_seconds": counters.get("detect_seconds"),
            "extract_seconds": counters.get("extract_seconds"),
            "blocks": blocks,
            "detected_blocks": int(counters.get("detected_blocks")),
            "extraction_units": int(counters.get("extraction_units")),
            "records": len(records),
            "blocks_per_second": blocks / wall if wall > 0 else 0.0,
            # Robustness observability:
            "on_error": mode,
            "fast_path": fast_path,
            "retries": int(counters.get("retries")),
            "failures": int(counters.get("stage_failures")),
            "degraded_records": sum(
                1 for r in records if r.status == STATUS_DEGRADED
            ),
            "failed_records": sum(
                1 for r in records if r.status == STATUS_FAILED
            ),
            "fallback_documents": int(counters.get("fallback_documents")),
            "quarantined_documents": quarantined,
            "sanitized_blocks": int(counters.get("sanitized_blocks")),
            "extractor": (
                extractor_stats.as_dict() if extractor_stats else None
            ),
        }

    @staticmethod
    def top_records_per_company(
        records: Sequence[ExtractedRecord], top_k: int = 2
    ) -> dict[str, list[ExtractedRecord]]:
        """The paper's Table 6 view: top-k objectives by detector score."""
        by_company: dict[str, list[ExtractedRecord]] = {}
        for record in records:
            by_company.setdefault(record.company, []).append(record)
        return {
            company: sorted(
                company_records, key=lambda r: r.score, reverse=True
            )[:top_k]
            for company, company_records in sorted(by_company.items())
        }
