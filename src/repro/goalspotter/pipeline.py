"""The integrated GoalSpotter pipeline: detect -> extract -> record.

This is the system of the paper's Figure 1/2 and Section 5: reports go in,
structured objective records (text + five key details + provenance) come
out, ready for the structured database (:mod:`repro.storage`).
"""

from __future__ import annotations

import dataclasses
from collections.abc import Sequence

import numpy as np

from repro.core.base import DetailExtractor
from repro.datasets.reports import SustainabilityReport
from repro.goalspotter.detector import ObjectiveDetector


@dataclasses.dataclass(frozen=True)
class ExtractedRecord:
    """One structured row for the objectives database."""

    company: str
    report_id: str
    page: int
    objective: str
    details: dict[str, str]
    score: float  # detector confidence

    def as_row(self, fields: Sequence[str]) -> list[str]:
        return [self.company, self.objective] + [
            self.details.get(field, "") for field in fields
        ]


class GoalSpotter:
    """Detection + detail extraction over sustainability reports.

    With ``segment=True`` the paper's future-work *objective segmentation*
    is enabled: each detected block is split into candidate objective
    clauses (:mod:`repro.core.segmentation`) and details are extracted per
    clause, yielding one record per clause.
    """

    def __init__(
        self,
        detector: ObjectiveDetector,
        extractor: DetailExtractor,
        segment: bool = False,
    ) -> None:
        self.detector = detector
        self.extractor = extractor
        self.segment = segment

    def process_report(
        self, report: SustainabilityReport
    ) -> list[ExtractedRecord]:
        """Run the full pipeline on one report."""
        return self.process_reports([report])

    def process_reports(
        self, reports: Sequence[SustainabilityReport]
    ) -> list[ExtractedRecord]:
        """Run the full pipeline on a report corpus (batched inference)."""
        block_texts: list[str] = []
        provenance: list[tuple[str, str, int]] = []
        for report in reports:
            for page_index, page in enumerate(report.pages):
                for block in page.blocks:
                    block_texts.append(block.text)
                    provenance.append(
                        (report.company, report.report_id, page_index)
                    )
        if not block_texts:
            return []
        scores = self.detector.predict_proba(block_texts)
        detected = scores >= self.detector.config.threshold
        detected_indices = np.nonzero(detected)[0]

        # Optionally segment detected blocks into objective clauses.
        units: list[str] = []  # texts handed to the extractor
        unit_block: list[int] = []  # owning block index per unit
        for block_index in detected_indices:
            text = block_texts[block_index]
            if self.segment:
                from repro.core.segmentation import segment_objectives

                clauses = segment_objectives(text)
            else:
                clauses = [text]
            for clause in clauses:
                units.append(clause)
                unit_block.append(int(block_index))

        details_list = self.extractor.extract_batch(units)
        records: list[ExtractedRecord] = []
        for unit_text, block_index, details in zip(
            units, unit_block, details_list
        ):
            company, report_id, page_index = provenance[block_index]
            records.append(
                ExtractedRecord(
                    company=company,
                    report_id=report_id,
                    page=page_index,
                    objective=unit_text,
                    details=details,
                    score=float(scores[block_index]),
                )
            )
        return records

    @staticmethod
    def top_records_per_company(
        records: Sequence[ExtractedRecord], top_k: int = 2
    ) -> dict[str, list[ExtractedRecord]]:
        """The paper's Table 6 view: top-k objectives by detector score."""
        by_company: dict[str, list[ExtractedRecord]] = {}
        for record in records:
            by_company.setdefault(record.company, []).append(record)
        return {
            company: sorted(
                company_records, key=lambda r: r.score, reverse=True
            )[:top_k]
            for company, company_records in sorted(by_company.items())
        }
