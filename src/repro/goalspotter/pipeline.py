"""The integrated GoalSpotter pipeline: detect -> extract -> record.

This is the system of the paper's Figure 1/2 and Section 5: reports go in,
structured objective records (text + five key details + provenance) come
out, ready for the structured database (:mod:`repro.storage`).
"""

from __future__ import annotations

import dataclasses
from collections.abc import Sequence

import numpy as np

from repro.core.base import DetailExtractor
from repro.core.segmentation import segment_objectives
from repro.datasets.reports import SustainabilityReport
from repro.goalspotter.detector import ObjectiveDetector
from repro.runtime.profiling import PerfCounters


@dataclasses.dataclass(frozen=True)
class ExtractedRecord:
    """One structured row for the objectives database."""

    company: str
    report_id: str
    page: int
    objective: str
    details: dict[str, str]
    score: float  # detector confidence

    def as_row(self, fields: Sequence[str]) -> list[str]:
        return [self.company, self.objective] + [
            self.details.get(field, "") for field in fields
        ]


class GoalSpotter:
    """Detection + detail extraction over sustainability reports.

    With ``segment=True`` the paper's future-work *objective segmentation*
    is enabled: each detected block is split into candidate objective
    clauses (:mod:`repro.core.segmentation`) and details are extracted per
    clause, yielding one record per clause.
    """

    def __init__(
        self,
        detector: ObjectiveDetector,
        extractor: DetailExtractor,
        segment: bool = False,
    ) -> None:
        self.detector = detector
        self.extractor = extractor
        self.segment = segment
        #: Stage timings and counts from the last ``process_reports`` call.
        self.last_run_stats: dict | None = None

    def process_report(
        self, report: SustainabilityReport
    ) -> list[ExtractedRecord]:
        """Run the full pipeline on one report."""
        return self.process_reports([report])

    def process_reports(
        self, reports: Sequence[SustainabilityReport]
    ) -> list[ExtractedRecord]:
        """Run the full pipeline on a report corpus (batched inference)."""
        block_texts: list[str] = []
        provenance: list[tuple[str, str, int]] = []
        for report in reports:
            for page_index, page in enumerate(report.pages):
                for block in page.blocks:
                    block_texts.append(block.text)
                    provenance.append(
                        (report.company, report.report_id, page_index)
                    )
        if not block_texts:
            self.last_run_stats = None
            return []
        counters = PerfCounters()
        with counters.timer("wall_seconds"):
            with counters.timer("detect_seconds"):
                scores = self.detector.predict_proba(block_texts)
            detected = scores >= self.detector.config.threshold
            detected_indices = np.nonzero(detected)[0]

            # Segment detected blocks into extraction units in one pass
            # (one clause per unit when segmentation is on, else the block).
            units: list[str] = []  # texts handed to the extractor
            unit_block: list[int] = []  # owning block index per unit
            for block_index in detected_indices:
                text = block_texts[block_index]
                clauses = segment_objectives(text) if self.segment else (text,)
                for clause in clauses:
                    units.append(clause)
                    unit_block.append(int(block_index))

            with counters.timer("extract_seconds"):
                details_list = self.extractor.extract_batch(units)
            records: list[ExtractedRecord] = []
            for unit_text, block_index, details in zip(
                units, unit_block, details_list
            ):
                company, report_id, page_index = provenance[block_index]
                records.append(
                    ExtractedRecord(
                        company=company,
                        report_id=report_id,
                        page=page_index,
                        objective=unit_text,
                        details=details,
                        score=float(scores[block_index]),
                    )
                )
        wall = counters.get("wall_seconds")
        extractor_stats = getattr(self.extractor, "last_run_stats", None)
        self.last_run_stats = {
            "wall_seconds": wall,
            "detect_seconds": counters.get("detect_seconds"),
            "extract_seconds": counters.get("extract_seconds"),
            "blocks": len(block_texts),
            "detected_blocks": int(detected.sum()),
            "extraction_units": len(units),
            "records": len(records),
            "blocks_per_second": len(block_texts) / wall if wall > 0 else 0.0,
            "extractor": (
                extractor_stats.as_dict() if extractor_stats else None
            ),
        }
        return records

    @staticmethod
    def top_records_per_company(
        records: Sequence[ExtractedRecord], top_k: int = 2
    ) -> dict[str, list[ExtractedRecord]]:
        """The paper's Table 6 view: top-k objectives by detector score."""
        by_company: dict[str, list[ExtractedRecord]] = {}
        for record in records:
            by_company.setdefault(record.company, []).append(record)
        return {
            company: sorted(
                company_records, key=lambda r: r.score, reverse=True
            )[:top_k]
            for company, company_records in sorted(by_company.items())
        }
