"""GoalSpotter: sustainability objective detection + integrated extraction.

GoalSpotter (Mahdavi et al., CIKM 2024) is the upstream system the paper
extends: it classifies report text blocks into *objective* vs *noise*
(Section 2.3) by fine-tuning a transformer. This package rebuilds that
detection stage on our substrate and integrates the new detail-extraction
service exactly as the paper's deployment does: detect objectives in
reports, extract their key details, store structured records.
"""

from repro.goalspotter.detector import DetectorConfig, ObjectiveDetector
from repro.goalspotter.pipeline import ExtractedRecord, GoalSpotter

__all__ = [
    "DetectorConfig",
    "ExtractedRecord",
    "GoalSpotter",
    "ObjectiveDetector",
]
