"""Legacy setup shim: the offline environment lacks the ``wheel`` package,
so editable installs must go through ``setup.py develop``."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of 'Automatic Detail Extraction from Sustainability "
        "Objectives Using Weak Supervision' (EDBT 2026)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy"],
    entry_points={"console_scripts": ["repro=repro.cli:main"]},
)
