"""Evaluate the extractor on the NetZeroFacts reconstruction.

The paper's second dataset: 599 emission-goal sentences annotated with
target value, reference year, and target year. This example trains the
weak-supervision extractor on the NetZeroFacts schema and prints per-field
results — the schema-agnosticism the paper claims (any field inventory
works, not just the five sustainability fields).

Run:  python examples/netzerofacts_benchmark.py
"""

from repro.core import ExtractorConfig, WeakSupervisionExtractor
from repro.core.schema import NETZEROFACTS_FIELDS
from repro.datasets import build_netzerofacts, train_test_split
from repro.eval import evaluate_extractions, render_table
from repro.models.training import FineTuneConfig


def main() -> None:
    dataset = build_netzerofacts(seed=0)
    train, test = train_test_split(dataset, test_fraction=0.2, seed=0)
    print(f"NetZeroFacts reconstruction: {len(dataset)} sentences")
    print("field availability:")
    for field, rate in dataset.field_availability().items():
        print(f"  {field}: {rate:.1%}")

    extractor = WeakSupervisionExtractor(
        ExtractorConfig(
            fields=NETZEROFACTS_FIELDS,
            finetune=FineTuneConfig(epochs=8, learning_rate=1e-3),
        )
    )
    print("\nfine-tuning ...")
    extractor.fit(train.objectives)

    predictions = extractor.extract_batch([o.text for o in test.objectives])
    report = evaluate_extractions(
        predictions, [o.details for o in test.objectives], NETZEROFACTS_FIELDS
    )
    rows = [
        [field] + [f"{m:.2f}" for m in report.field_metrics(field)]
        for field in NETZEROFACTS_FIELDS
    ]
    rows.append(
        ["micro", f"{report.precision:.2f}", f"{report.recall:.2f}",
         f"{report.f1:.2f}"]
    )
    print()
    print(render_table(["Field", "P", "R", "F1"], rows,
                       title="NetZeroFacts held-out results"))

    example = test.objectives[0]
    print(f"\nexample: {example.text}")
    print(f"extracted: {extractor.extract(example.text)}")


if __name__ == "__main__":
    main()
