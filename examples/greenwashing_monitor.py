"""Greenwashing monitoring over the structured objective database.

The paper's motivation: "specific facts and figures can be monitored over
time to measure the fidelity of the companies to their previously claimed
sustainability objectives" (Section 5.1). This example shows the analyst
side only — no model training — using the normalized (typed) columns the
store derives on insert:

* which companies made net-zero pledges, and with what deadline;
* who commits to the deepest percentage reductions;
* how long the typical commitment horizon is;
* which companies are vague (low specificity) vs concrete.

Run:  python examples/greenwashing_monitor.py
"""

from repro.goalspotter.pipeline import ExtractedRecord
from repro.eval import render_table
from repro.storage import (
    ObjectiveStore,
    horizon_statistics,
    net_zero_pledges,
    reduction_targets,
    specificity_ranking,
)


def record(company, objective, **details):
    full = {
        "Action": "", "Amount": "", "Qualifier": "",
        "Baseline": "", "Deadline": "",
    }
    full.update(details)
    return ExtractedRecord(
        company=company, report_id="demo", page=0,
        objective=objective, details=full, score=0.9,
    )


DEMO_RECORDS = [
    record(
        "Aurora Energy", "Reach net-zero carbon by 2040.",
        Action="Reach", Amount="net-zero", Qualifier="carbon",
        Deadline="2040",
    ),
    record(
        "Aurora Energy",
        "Reduce Scope 1 and 2 emissions by 55% by 2030 (baseline 2019).",
        Action="Reduce", Amount="55%",
        Qualifier="Scope 1 and 2 emissions", Baseline="2019",
        Deadline="2030",
    ),
    record(
        "Borealis Foods", "Achieve carbon neutrality by 2035.",
        Action="Achieve", Amount="carbon neutral", Deadline="2035",
    ),
    record(
        "Borealis Foods",
        "Cut food waste across our restaurants by 30% by 2028 "
        "(baseline 2022).",
        Action="Cut", Amount="30%",
        Qualifier="food waste across our restaurants",
        Baseline="2022", Deadline="2028",
    ),
    record(
        "Cirrus Retail", "Promote sustainable choices for our customers.",
        Action="Promote", Qualifier="sustainable choices",
    ),
    record(
        "Cirrus Retail", "Explore innovative value-based approaches.",
        Action="Explore", Qualifier="value-based approaches",
    ),
]


def main() -> None:
    with ObjectiveStore() as store:
        store.insert_records(DEMO_RECORDS)

        print("== net-zero pledges (normalized amount_kind) ==")
        for company, deadline_year in net_zero_pledges(store):
            when = deadline_year if deadline_year else "no deadline!"
            print(f"  {company}: {when}")

        print("\n== reduction targets >= 25% (typed columns) ==")
        rows = [
            [company, f"{percent:.0f}%", str(year or "-")]
            for company, percent, year in reduction_targets(store, 25.0)
        ]
        print(render_table(["Company", "Cut", "By"], rows))

        stats = horizon_statistics(store)
        print(
            f"\ncommitment horizons: n={stats['count']:.0f}, "
            f"mean {stats['mean']:.1f}y "
            f"(min {stats['min']:.0f}, max {stats['max']:.0f})"
        )

        print("\n== specificity ranking (who is concrete, who is vague) ==")
        for company, score in specificity_ranking(store):
            flag = "  <- vague claims, greenwashing risk" if score < 2.5 else ""
            print(f"  {company}: {score:.1f}/5{flag}")


if __name__ == "__main__":
    main()
