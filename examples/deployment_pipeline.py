"""Deployment walkthrough: detect -> extract -> store -> monitor.

Reproduces the paper's Section 5 workflow at small scale: train the
GoalSpotter detector and the detail extractor, run the integrated pipeline
over a multi-company report corpus, store structured records in the SQLite
objective database, and run the analyst monitoring queries (company
comparison, specificity ranking, deadline timeline).

Run:  python examples/deployment_pipeline.py
"""

from repro.core import ExtractorConfig
from repro.datasets import build_sustainability_goals
from repro.deploy import build_trained_pipeline, run_scenario_1, run_scenario_2
from repro.deploy.scenarios import records_table
from repro.eval import render_table
from repro.models.training import FineTuneConfig
from repro.storage import (
    company_comparison,
    deadline_timeline,
    specificity_ranking,
)


def main() -> None:
    training_data = build_sustainability_goals(seed=1, size=400)
    print("training detector + extractor ...")
    pipeline = build_trained_pipeline(
        training_data,
        seed=0,
        detector_blocks=600,
        extractor_config=ExtractorConfig(
            finetune=FineTuneConfig(epochs=8, learning_rate=1e-3)
        ),
    )

    # Scenario 1: the 14-company corpus, scaled down for a quick demo.
    print("processing the deployment corpus (scale=0.02) ...")
    result = run_scenario_1(pipeline, scale=0.02)
    docs, pages, detected = result.totals
    print(f"\nprocessed {docs} documents / {pages} pages")
    print(f"detected and extracted {detected} objectives\n")

    print(
        render_table(
            ["Company", "#Documents", "#Pages", "#Extracted Objectives"],
            [[c, str(d), str(p), str(o)] for c, d, p, o in result.summary_rows],
            title="Post-deployment summary (Table 5 shape)",
        )
    )

    # Table 6 shape: top-2 objectives per company with extracted details.
    top_rows = []
    for company, records in list(result.top_records.items())[:5]:
        top_rows.extend(records_table(records, max_text=44))
    print()
    print(
        render_table(
            ["Company", "Objective", "Action", "Amount", "Qualifier",
             "Baseline", "Deadline"],
            top_rows,
            title="Top-2 objectives per company (Table 6 shape, first 5 companies)",
        )
    )

    # Analyst monitoring queries over the structured store.
    store = result.store
    print("\n-- analyst queries over the objective database --")
    ranking = specificity_ranking(store)[:3]
    print("most specific companies:",
          ", ".join(f"{c} ({s:.2f})" for c, s in ranking))
    timeline = deadline_timeline(store)
    if timeline:
        first_years = list(timeline.items())[:5]
        print("commitments due:",
              ", ".join(f"{year}: {count}" for year, count in first_years))
    stats = company_comparison(store)[:3]
    for entry in stats:
        print(
            f"{entry.company}: {entry.objectives} objectives, "
            f"{entry.with_deadline} with deadline, "
            f"{entry.with_baseline} with baseline"
        )

    # Scenario 2: one dense report (Table 7 shape).
    print("\nanalyzing a single dense report ...")
    records = run_scenario_2(pipeline, num_pages=25, num_objectives=8)
    print(
        render_table(
            ["Company", "Objective", "Action", "Amount", "Qualifier",
             "Baseline", "Deadline"],
            records_table(records, max_text=44),
            title="Single-report analysis (Table 7 shape)",
        )
    )
    store.close()


if __name__ == "__main__":
    main()
