"""A tour of Algorithm 1 on the paper's own worked examples.

Reproduces, step by step:
* Table 3 — the weak token labels of the Figure 3 objective;
* Table 1 — the three annotated example objectives;
* the exact-vs-fuzzy matching behaviour discussed in Section 5.3.

Run:  python examples/weak_labeling_tour.py
"""

from repro.core import AnnotatedObjective, weakly_label_objective
from repro.core.matching import ExactMatcher, FuzzyMatcher
from repro.core.weak_labeling import WeakLabelingStats
from repro.eval import render_table


def show(objective: AnnotatedObjective, title: str) -> None:
    tokens, labels = weakly_label_objective(objective)
    print(
        render_table(
            ["Token", "Label"],
            [[t.text, l] for t, l in zip(tokens, labels)],
            title=title,
        )
    )
    print()


def main() -> None:
    # Figure 3 / Table 3: the paper's worked example.
    figure3 = AnnotatedObjective(
        "We co-founded The Climate Pledge, a commitment to reach "
        "net-zero carbon by 2040.",
        {
            "Action": "reach",
            "Amount": "net-zero",
            "Qualifier": "carbon",
            "Baseline": "",
            "Deadline": "2040",
        },
    )
    show(figure3, "Paper Table 3 — weak labels for the Figure 3 objective")

    # Table 1: the other two annotated examples.
    show(
        AnnotatedObjective(
            "Restore 100% of our global water use by 2025.",
            {
                "Action": "Restore",
                "Amount": "100%",
                "Qualifier": "global water use",
                "Deadline": "2025",
            },
        ),
        "Paper Table 1, row 2",
    )
    show(
        AnnotatedObjective(
            "Reduce energy consumption by 20% by 2025 (baseline 2017).",
            {
                "Action": "Reduce",
                "Amount": "20%",
                "Qualifier": "energy consumption",
                "Baseline": "2017",
                "Deadline": "2025",
            },
        ),
        "Paper Table 1, row 3",
    )

    # Section 5.3: exact matching misses lexically different annotations;
    # the proposed fuzzy matching recovers them.
    diverging = AnnotatedObjective(
        "We are committed to reducing our water consumption by 30%.",
        {"Action": "reduce", "Amount": "30%"},  # expert wrote the lemma
    )
    for matcher, name in ((ExactMatcher(), "exact"), (FuzzyMatcher(), "fuzzy")):
        stats = WeakLabelingStats()
        __, labels = weakly_label_objective(
            diverging, matcher=matcher, stats=stats
        )
        found_action = any(label == "B-Action" for label in labels)
        print(
            f"{name:5s} matching: Action "
            f"{'matched' if found_action else 'NOT matched'} "
            f"(coverage {stats.coverage:.0%})"
        )


if __name__ == "__main__":
    main()
