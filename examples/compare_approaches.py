"""Compare all four Table 4 approaches on one dataset slice.

Trains/evaluates Conditional Random Fields, zero-shot prompting, few-shot
prompting, and the weak-supervision transformer (GoalSpotter) with the same
protocol and prints a Table 4 style comparison. Uses a single run on a
slice for speed — the full protocol (mean of 5 runs, full datasets) lives
in ``benchmarks/bench_table4_comparison.py``.

Run:  python examples/compare_approaches.py
"""

from repro.core import ExtractorConfig, WeakSupervisionExtractor
from repro.crf import CrfDetailExtractor
from repro.datasets import build_sustainability_goals, train_test_split
from repro.eval import paired_bootstrap, render_table
from repro.eval.protocol import evaluate_extractor
from repro.llm import PromptingExtractor
from repro.models.training import FineTuneConfig


def main() -> None:
    dataset = build_sustainability_goals(seed=1, size=500)
    train, test = train_test_split(dataset, test_fraction=0.2, seed=0)
    test_texts = [o.text for o in test.objectives]
    test_gold = [o.details for o in test.objectives]

    approaches = [
        CrfDetailExtractor(),
        PromptingExtractor("zero"),
        PromptingExtractor("few"),
        WeakSupervisionExtractor(
            ExtractorConfig(
                finetune=FineTuneConfig(epochs=8, learning_rate=1e-3)
            )
        ),
    ]

    rows = []
    predictions_by_name = {}
    for extractor in approaches:
        print(f"running {extractor.name} ...")
        report, fit_seconds, inference_seconds = evaluate_extractor(
            extractor, train, test
        )
        predictions_by_name[extractor.name] = extractor.extract_batch(
            test_texts
        )
        total_minutes = (fit_seconds + inference_seconds) / 60
        rows.append(
            [
                extractor.name,
                f"{report.precision:.2f}",
                f"{report.recall:.2f}",
                f"{report.f1:.2f}",
                "< 1" if total_minutes < 1 else f"{total_minutes:.0f}",
            ]
        )
    print()
    print(
        render_table(
            ["Approach", "P", "R", "F", "T (min)"],
            rows,
            title="Sustainability Goals (500-objective slice, 1 run)",
        )
    )
    print(
        "\nNote: prompting rows include the simulated LLM latency "
        "(see DESIGN.md, SimulatedLLM substitution)."
    )

    # Is the weak-supervision win statistically stable? Paired bootstrap
    # of GoalSpotter vs the strongest prompting baseline.
    result = paired_bootstrap(
        predictions_by_name["GoalSpotter"],
        predictions_by_name["Few-Shot Prompting"],
        test_gold,
        dataset.fields,
        samples=500,
    )
    print(
        f"\npaired bootstrap GoalSpotter vs Few-Shot: "
        f"dF1 = {result.delta:+.3f}, p = {result.p_value:.3f} "
        f"({'significant' if result.significant() else 'not significant'} "
        f"at 0.05)"
    )


if __name__ == "__main__":
    main()
