"""Quickstart: train the weak-supervision extractor and extract details.

Mirrors the paper's Figure 2 workflow end to end on a small slice of the
Sustainability Goals reconstruction (a few hundred objectives, ~1 minute):

1. development phase — coarse objective-level annotations are converted to
   token labels by Algorithm 1 and a transformer is fine-tuned on them;
2. production phase — key details are extracted from unseen objectives.

Run:  python examples/quickstart.py
"""

from repro.core import ExtractorConfig, WeakSupervisionExtractor
from repro.datasets import build_sustainability_goals, train_test_split
from repro.eval import evaluate_extractions, render_table
from repro.models.training import FineTuneConfig


def main() -> None:
    # A small slice keeps the quickstart around a minute; drop `size` to
    # use the full 1106-objective reconstruction.
    dataset = build_sustainability_goals(seed=1, size=400)
    train, test = train_test_split(dataset, test_fraction=0.2, seed=0)
    print(
        f"dataset: {len(dataset)} objectives "
        f"({len(train)} train / {len(test)} test)"
    )

    extractor = WeakSupervisionExtractor(
        ExtractorConfig(
            finetune=FineTuneConfig(epochs=8, learning_rate=1e-3)
        )
    )
    print("fine-tuning on weak supervision signals ...")
    extractor.fit(train.objectives)
    coverage = extractor.weak_stats.coverage
    print(f"weak labeling coverage: {coverage:.1%}")

    # Production phase: extract from unseen objectives.
    predictions = extractor.extract_batch([o.text for o in test.objectives])
    report = evaluate_extractions(
        predictions, [o.details for o in test.objectives], dataset.fields
    )
    print(
        f"\nheld-out micro metrics: P={report.precision:.2f} "
        f"R={report.recall:.2f} F1={report.f1:.2f}\n"
    )

    rows = []
    for objective, details in list(zip(test.objectives, predictions))[:5]:
        text = objective.text
        rows.append(
            [text[:48] + ("..." if len(text) > 48 else "")]
            + [details[field] for field in dataset.fields]
        )
    print(
        render_table(
            ["Objective"] + list(dataset.fields),
            rows,
            title="Extracted details (first 5 test objectives)",
        )
    )


if __name__ == "__main__":
    main()
