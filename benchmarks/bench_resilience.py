"""Clean-path overhead of the fault-tolerant runtime (<3% target).

The resilience layer (validation/sanitization, retry wrappers, circuit
breakers, quarantine bookkeeping) must be effectively free when nothing
fails: skip/degrade runs take the same optimistic corpus-batched path as
raise mode, so the only extra work is input sanitization and counter
bookkeeping. This bench times the full GoalSpotter pipeline on a clean
synthetic corpus under ``on_error="raise"`` (the legacy path) and
``on_error="degrade"`` (full resilience wiring, no faults), verifies the
records are identical, and writes the measured overhead into
``BENCH_resilience.json`` at the repo root.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_resilience.py

or under pytest (``pytest benchmarks/bench_resilience.py -s``).

Knobs: ``REPRO_BENCH_ROUNDS`` (timing rounds per mode, default 5; modes
are interleaved within each round and the per-mode minimum is reported to
shed scheduler noise), ``REPRO_BENCH_EPOCHS`` (training epochs, default 2).
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from benchmarks.common import env_int
from repro.core.extractor import ExtractorConfig, WeakSupervisionExtractor
from repro.datasets.generator import ObjectiveGenerator
from repro.datasets.reports import ReportGenerator
from repro.deploy import build_trained_pipeline
from repro.goalspotter.detector import DetectorConfig
from repro.models.training import FineTuneConfig

OVERHEAD_TARGET_PCT = 3.0
RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_resilience.json"


def _build_pipeline(seed: int, epochs: int):
    objectives = ObjectiveGenerator(seed=seed).generate_many(120)
    extractor = WeakSupervisionExtractor(
        ExtractorConfig(
            finetune=FineTuneConfig(epochs=epochs, learning_rate=1e-3)
        )
    ).fit(objectives)
    return build_trained_pipeline(
        train_dataset=None,
        seed=seed,
        detector_blocks=240,
        detector_config=DetectorConfig(
            finetune=FineTuneConfig(epochs=epochs, learning_rate=1e-3)
        ),
        extractor=extractor,
    )


def _build_corpus(seed: int, num_reports: int, num_pages: int):
    generator = ReportGenerator(seed=seed)
    return [
        generator.generate_report(
            company=f"BenchCorp-{index}",
            report_id=f"bench-{index:03d}",
            num_pages=num_pages,
            num_objectives=max(4, num_pages // 3),
        )
        for index in range(num_reports)
    ]


def _record_key(record):
    return (
        record.company,
        record.report_id,
        record.page,
        record.objective,
        tuple(sorted(record.details.items())),
        record.score,
    )


def run_resilience_overhead(
    rounds: int | None = None,
    epochs: int | None = None,
    seed: int = 0,
    num_reports: int = 4,
    num_pages: int = 12,
) -> dict:
    """Time raise vs. degrade (no faults) on identical clean corpora."""
    rounds = rounds or env_int("REPRO_BENCH_ROUNDS", 5)
    epochs = epochs or env_int("REPRO_BENCH_EPOCHS", 2)
    pipeline = _build_pipeline(seed=seed, epochs=epochs)
    corpus = _build_corpus(
        seed=seed + 1, num_reports=num_reports, num_pages=num_pages
    )

    records: dict[str, list] = {}
    timings: dict[str, list[float]] = {"raise": [], "degrade": []}
    # Interleave modes within each round so clock drift, cache state, and
    # background load hit both paths equally; round 0 is warmup.
    for round_index in range(rounds + 1):
        for mode in ("raise", "degrade"):
            pipeline.extractor.tokenizer.clear_cache()
            start = time.perf_counter()
            result = pipeline.process_reports(corpus, on_error=mode)
            elapsed = time.perf_counter() - start
            if round_index > 0:
                timings[mode].append(elapsed)
            records[mode] = result
            if mode == "degrade":  # no faults: must stay on the fast path
                assert pipeline.last_run_stats["fast_path"]

    raise_best = min(timings["raise"])
    degrade_best = min(timings["degrade"])
    overhead_pct = (
        (degrade_best - raise_best) / raise_best * 100.0 if raise_best else 0.0
    )
    identical = [_record_key(r) for r in records["raise"]] == [
        _record_key(r) for r in records["degrade"]
    ]
    report = {
        "config": {
            "rounds": rounds,
            "epochs": epochs,
            "seed": seed,
            "num_reports": num_reports,
            "num_pages": num_pages,
        },
        "raise_seconds": raise_best,
        "degrade_seconds": degrade_best,
        "raise_all_rounds": timings["raise"],
        "degrade_all_rounds": timings["degrade"],
        "overhead_pct": overhead_pct,
        "target_pct": OVERHEAD_TARGET_PCT,
        "within_target": overhead_pct < OVERHEAD_TARGET_PCT,
        "records_identical": identical,
        "records": len(records["raise"]),
    }
    RESULT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    return report


@pytest.mark.benchmark(group="runtime")
def test_resilience_clean_path_overhead(benchmark):
    report = benchmark.pedantic(run_resilience_overhead, rounds=1, iterations=1)
    print()
    print(json.dumps(report, indent=2))
    assert report["records_identical"]
    assert report["records"] > 0
    # The headline claim: the resilience wrappers cost <3% on the clean path.
    assert report["within_target"], (
        f"clean-path overhead {report['overhead_pct']:.2f}% exceeds "
        f"{OVERHEAD_TARGET_PCT}% target"
    )


if __name__ == "__main__":
    print(json.dumps(run_resilience_overhead(), indent=2))
