"""Table 6: extracted details for the top-2 objectives per company.

Reruns Scenario 1 on a moderate slice of the deployment corpus and prints
the paper's Table 6 view — the two highest-confidence objectives per
company with their extracted Action / Amount / Qualifier / Baseline /
Deadline — plus extraction-quality statistics against the generator's
ground truth.

Expected shape: every company contributes rows; most rows have an Action
and a Qualifier; Baseline/Deadline are sparse (as in the paper's Table 6,
where most cells in those columns are empty).
"""

from __future__ import annotations

import pytest

from repro.core.schema import SUSTAINABILITY_FIELDS
from repro.datasets.reports import build_deployment_corpus
from repro.deploy import run_scenario_1
from repro.deploy.scenarios import records_table
from repro.eval import render_table


@pytest.mark.benchmark(group="deployment")
def test_table6_top_objectives(benchmark, deployment_pipeline):
    reports = build_deployment_corpus(seed=11, scale=0.1)

    result = benchmark.pedantic(
        lambda: run_scenario_1(deployment_pipeline, reports=reports, top_k=2),
        rounds=1,
        iterations=1,
    )

    rows = []
    for company, records in result.top_records.items():
        rows.extend(records_table(records, max_text=46))
    print()
    print(
        render_table(
            ["Company", "Sustainability Objective"] + list(
                SUSTAINABILITY_FIELDS
            ),
            rows,
            title="Table 6 — top-2 extracted objectives per company",
        )
    )

    filled = {field: 0 for field in SUSTAINABILITY_FIELDS}
    total = 0
    for records in result.top_records.values():
        for record in records:
            total += 1
            for field in SUSTAINABILITY_FIELDS:
                filled[field] += bool(record.details.get(field))
    print(
        "fill rates:",
        {field: f"{count / max(total, 1):.0%}" for field, count in filled.items()},
    )
    result.store.close()

    assert len(result.top_records) == 14
    assert total >= 14  # at least one detected objective per company
    # Paper Table 6 shape: timeline fields are mostly empty; the
    # action/qualifier columns are mostly filled.
    assert filled["Action"] > filled["Baseline"]
    assert filled["Qualifier"] >= filled["Deadline"]
