"""Table 7: detail extraction from a single dense sustainability report.

Scenario 2 of the paper: one report with dense and varied sustainability
content; GoalSpotter detects its objectives and extracts their details
into one structured table.

Expected shape: the table lists the top objectives with extracted details;
quantified objectives carry amounts; extraction quality against the
report's generated ground truth is well above the prompting baselines'
level on this distribution.
"""

from __future__ import annotations

import pytest

from repro.core.schema import SUSTAINABILITY_FIELDS
from repro.datasets.reports import ReportGenerator
from repro.deploy import run_scenario_2
from repro.deploy.scenarios import records_table
from repro.eval import evaluate_extractions, render_table
from repro.eval.metrics import values_match


@pytest.mark.benchmark(group="deployment")
def test_table7_single_report(benchmark, deployment_pipeline):
    report = ReportGenerator(seed=23).generate_report(
        company="DemoCorp",
        report_id="demo-2026",
        num_pages=40,
        num_objectives=14,
    )

    records = benchmark.pedantic(
        lambda: run_scenario_2(deployment_pipeline, report=report, top_k=8),
        rounds=1,
        iterations=1,
    )

    print()
    print(
        render_table(
            ["Company", "Sustainability Objective"] + list(
                SUSTAINABILITY_FIELDS
            ),
            records_table(records, max_text=48),
            title="Table 7 — extracted details from one report",
        )
    )

    # Score detected-and-annotated objectives against the generator truth.
    truth = {o.text: o.details for o in report.objectives()}
    matched = [r for r in records if r.objective in truth]
    if matched:
        report_metrics = evaluate_extractions(
            [r.details for r in matched],
            [truth[r.objective] for r in matched],
            SUSTAINABILITY_FIELDS,
        )
        print(
            f"extraction vs ground truth on {len(matched)} detected "
            f"objectives: P {report_metrics.precision:.2f} "
            f"R {report_metrics.recall:.2f} F1 {report_metrics.f1:.2f}"
        )

    assert records, "the pipeline must detect objectives in a dense report"
    assert any(record.details.get("Action") for record in records)
    # Values must be verbatim substrings of their objectives (possibly
    # normalized) — the structured table quotes the report.
    for record in matched:
        for field, value in record.details.items():
            if value and truth[record.objective].get(field):
                # When both exist they usually agree (soft check overall).
                pass
    agreement = sum(
        values_match(
            record.details.get("Action", ""),
            truth[record.objective].get("Action", ""),
        )
        for record in matched
        if truth[record.objective].get("Action")
    )
    actions_available = sum(
        1 for record in matched if truth[record.objective].get("Action")
    )
    if actions_available:
        assert agreement / actions_available > 0.4
