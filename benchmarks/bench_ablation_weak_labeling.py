"""Ablations on the design decisions DESIGN.md calls out.

Three studies:

1. **Matcher** (exact / lowercase / fuzzy) — the paper's implementation is
   exact matching and names fuzzy matching as future work (§5.3). We
   measure Algorithm 1's annotation coverage under each matcher; fuzzy
   must recover annotations that diverge lexically from the text.
2. **Preprocessing** — GoalSpotter-style normalization on vs off, measured
   on noisy variants of the corpus (typographic dashes etc.).
3. **Subword label strategy + decoding** — 'first' vs 'all' piece
   supervision and argmax vs constrained decoding, measured end-to-end on
   a training slice (small fine-tunes).
"""

from __future__ import annotations

import pytest

from benchmarks.common import default_extractor_config
from repro.core.extractor import WeakSupervisionExtractor
from repro.core.matching import ExactMatcher, FuzzyMatcher, LowercaseMatcher
from repro.core.weak_labeling import WeakLabelingStats, weakly_label_objective
from repro.datasets.base import train_test_split
from repro.eval import evaluate_extractions, render_table
from repro.models.training import FineTuneConfig


@pytest.mark.benchmark(group="ablation")
def test_ablation_matcher_coverage(benchmark, sustainability_goals):
    matchers = {
        "exact (paper)": ExactMatcher(),
        "lowercase": LowercaseMatcher(),
        "fuzzy (paper's future work)": FuzzyMatcher(),
    }

    def run():
        coverage = {}
        for name, matcher in matchers.items():
            stats = WeakLabelingStats()
            for objective in sustainability_goals:
                weakly_label_objective(objective, matcher=matcher, stats=stats)
            coverage[name] = stats.coverage
        return coverage

    coverage = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [[name, f"{value:.4f}"] for name, value in coverage.items()]
    print()
    print(
        render_table(
            ["Matcher", "Annotation coverage"],
            rows,
            title="Ablation — Algorithm 1 matcher",
        )
    )
    assert coverage["fuzzy (paper's future work)"] >= coverage["exact (paper)"]
    assert coverage["lowercase"] >= coverage["exact (paper)"]
    # The corpus contains diverging annotations, so fuzzy must strictly win.
    assert coverage["fuzzy (paper's future work)"] > coverage["exact (paper)"]


@pytest.mark.benchmark(group="ablation")
def test_ablation_preprocessing(benchmark, sustainability_goals):
    """Normalization must make noisy (PDF-style) text match clean text."""
    from repro.core.schema import AnnotatedObjective

    noisy = [
        AnnotatedObjective(
            text=o.text.replace("-", "–").replace(" ", " ", 3),
            details=o.details,
            company=o.company,
            report_id=o.report_id,
        )
        for o in list(sustainability_goals)[:400]
    ]

    def run():
        results = {}
        for normalize in (True, False):
            extractor = WeakSupervisionExtractor(
                default_extractor_config(normalize=normalize)
            )
            extractor.prepare_weak_labels(noisy)
            results[normalize] = extractor.weak_stats.coverage
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(
        render_table(
            ["Preprocessing", "Annotation coverage"],
            [
                ["GoalSpotter normalization", f"{results[True]:.4f}"],
                ["none", f"{results[False]:.4f}"],
            ],
            title="Ablation — preprocessing on noisy report text",
        )
    )
    assert results[True] > results[False]


@pytest.mark.benchmark(group="ablation")
def test_ablation_supervision_and_decoding(benchmark, sustainability_goals):
    slice_objectives = list(sustainability_goals)[:500]
    from repro.datasets.base import Dataset

    dataset = Dataset(
        "sg-slice", sustainability_goals.fields, slice_objectives
    )
    train, test = train_test_split(dataset, 0.2, seed=0)
    variants = {
        "all pieces + constrained": dict(
            subword_strategy="all", constrained_decoding=True
        ),
        "all pieces + argmax": dict(
            subword_strategy="all", constrained_decoding=False
        ),
        "first piece + constrained": dict(
            subword_strategy="first", constrained_decoding=True
        ),
    }

    def run():
        scores = {}
        for name, overrides in variants.items():
            config = default_extractor_config(
                finetune=FineTuneConfig(epochs=6, learning_rate=1e-3),
                **overrides,
            )
            extractor = WeakSupervisionExtractor(config)
            extractor.fit(train.objectives)
            predictions = extractor.extract_batch(
                [o.text for o in test.objectives]
            )
            scores[name] = evaluate_extractions(
                predictions,
                [o.details for o in test.objectives],
                dataset.fields,
            ).f1
            print(f"  {name}: F1 {scores[name]:.3f}")
        return scores

    scores = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [[name, f"{f1:.3f}"] for name, f1 in scores.items()]
    print()
    print(
        render_table(
            ["Variant", "F1"],
            rows,
            title="Ablation — subword supervision and decoding",
        )
    )
    assert all(f1 > 0.3 for f1 in scores.values())
