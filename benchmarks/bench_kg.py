"""Knowledge-graph build and drift-scan throughput over a company panel.

The kg subsystem (:mod:`repro.kg`) promises deterministic graph
construction (sharded parallel ingestion bitwise-identical to serial)
and exact drift recovery on the seeded panel (every injected event
found, zero false positives). This bench measures both on a scaled-up
multi-year panel and writes ``BENCH_kg.json`` at the repo root:

* serial graph build throughput (objectives ingested per second);
* parallel builds at each worker count in the ladder (default 1, 2, 4
  capped at the machine's cores; override with ``REPRO_BENCH_WORKERS``)
  with fingerprint identity against the serial build;
* drift-scan throughput (threads linked + findings scanned per second)
  and precision/recall against the panel's injected ground truth.

Throughput numbers are recorded on any host; no speedup bar is
enforced — resolution is global (serial) and dominates small builds, so
the headline guarantee here is *identity*, not scaling.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_kg.py

or under pytest (``pytest benchmarks/bench_kg.py -s``).

Knobs: ``REPRO_BENCH_WORKERS`` (comma-separated worker ladder),
``REPRO_BENCH_KG_COMPANIES`` (panel width, default 12),
``REPRO_BENCH_KG_GOALS`` (goals per company, default 4),
``REPRO_BENCH_KG_DRIFT`` (drift events per kind, default 2).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from benchmarks.common import env_int
from repro.datasets.sustainability import build_company_panel, panel_records
from repro.kg import (
    build_graph,
    build_graph_parallel,
    detect_drift,
    graph_fingerprint,
    link_goal_threads,
    rows_from_records,
)
from repro.kg.resolve import normalize_company_name

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_kg.json"

PANEL_YEARS = (2019, 2020, 2021, 2022, 2023)


def _worker_ladder(cpu_count: int) -> list[int]:
    spec = os.environ.get("REPRO_BENCH_WORKERS")
    if spec:
        return [int(part) for part in spec.split(",") if part.strip()]
    # Always include 2 so the artifact exercises the real pool path —
    # the claim is identity, not speedup, so core count is no excuse.
    ladder = {1, 2}
    if cpu_count >= 4:
        ladder.add(4)
    return sorted(ladder)


def _finding_key(kind, company, topic, year_from, year_to):
    return (kind, normalize_company_name(company), topic, year_from, year_to)


def run_kg_bench(seed: int = 0) -> dict:
    """Measure graph build / drift-scan throughput and drift accuracy."""
    num_companies = env_int("REPRO_BENCH_KG_COMPANIES", 12)
    goals_per_company = env_int("REPRO_BENCH_KG_GOALS", 4)
    drift_per_kind = env_int("REPRO_BENCH_KG_DRIFT", 2)
    cpu_count = os.cpu_count() or 1

    panel = build_company_panel(
        seed=seed,
        num_companies=num_companies,
        years=PANEL_YEARS,
        goals_per_company=goals_per_company,
        drift_per_kind=drift_per_kind,
    )
    rows = rows_from_records(panel_records(panel))

    # Serial baseline (warm the topic/resolution caches first).
    build_graph(rows)
    start = time.perf_counter()
    graph = build_graph(rows)
    serial_seconds = time.perf_counter() - start
    serial_fingerprint = graph_fingerprint(graph)

    runs = []
    for workers in _worker_ladder(cpu_count):
        start = time.perf_counter()
        parallel_graph = build_graph_parallel(rows, workers=workers)
        elapsed = time.perf_counter() - start
        runs.append(
            {
                "workers": workers,
                "seconds": elapsed,
                "objectives_per_second": (
                    len(rows) / elapsed if elapsed > 0 else 0.0
                ),
                "fingerprint_identical": (
                    graph_fingerprint(parallel_graph) == serial_fingerprint
                ),
            }
        )

    # Drift scan: threading + consecutive-pair comparison.
    start = time.perf_counter()
    threads = link_goal_threads(graph)
    findings = detect_drift(graph, threads=threads)
    drift_seconds = time.perf_counter() - start

    found = {
        _finding_key(
            f.kind, f.company, f.topic, f.year_from, f.year_to
        )
        for f in findings
    }
    injected = {
        _finding_key(
            e.kind, e.company, e.topic, e.year_from, e.year_to
        )
        for e in panel.drift_events
    }
    true_positives = len(found & injected)
    precision = true_positives / len(found) if found else 1.0
    recall = true_positives / len(injected) if injected else 1.0

    report = {
        "config": {
            "seed": seed,
            "num_companies": num_companies,
            "years": list(PANEL_YEARS),
            "goals_per_company": goals_per_company,
            "drift_per_kind": drift_per_kind,
        },
        "cpu_count": cpu_count,
        "objectives": len(rows),
        "graph_nodes": graph.number_of_nodes(),
        "graph_edges": graph.number_of_edges(),
        "serial_build_seconds": serial_seconds,
        "serial_objectives_per_second": (
            len(rows) / serial_seconds if serial_seconds > 0 else 0.0
        ),
        "runs": runs,
        "all_fingerprints_identical": all(
            run["fingerprint_identical"] for run in runs
        ),
        "drift_scan_seconds": drift_seconds,
        "threads": len(threads),
        "threads_per_second": (
            len(threads) / drift_seconds if drift_seconds > 0 else 0.0
        ),
        "findings": len(findings),
        "injected_events": len(injected),
        "drift_precision": precision,
        "drift_recall": recall,
    }
    RESULT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    return report


@pytest.mark.benchmark(group="kg")
@pytest.mark.kg
def test_kg_throughput(benchmark):
    report = benchmark.pedantic(run_kg_bench, iterations=1, rounds=1)
    print()
    print(json.dumps(report, indent=2))
    assert report["objectives"] > 0
    # The headline guarantees hold on any machine: bitwise identity of
    # parallel builds, and exact recovery of the injected drift.
    assert report["all_fingerprints_identical"]
    assert report["drift_precision"] == 1.0
    assert report["drift_recall"] == 1.0


if __name__ == "__main__":
    print(json.dumps(run_kg_bench(), indent=2))
