"""Checkpointing overhead on the training fast path (<5% target).

Durable training must be cheap enough to leave on: this bench trains the
same token classifier three ways — no checkpointing, a checkpoint every
step (the worst case), and the CLI default of every 10 steps — verifies
the checkpointed runs produce bitwise-identical weights and history to
the baseline, then kills a run mid-training with the fault injector and
confirms the resumed run is also bitwise-identical. Measured overheads
land in ``BENCH_checkpoint.json`` at the repo root; the gate is <5%
overhead at ``--checkpoint-every 10``.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_checkpoint.py

or under pytest (``pytest benchmarks/bench_checkpoint.py -s``).

Knobs: ``REPRO_BENCH_ROUNDS`` (timing rounds per mode, default 3; modes
are interleaved within each round and the per-mode minimum is reported
to shed scheduler noise), ``REPRO_BENCH_EPOCHS`` (training epochs,
default 8).
"""

from __future__ import annotations

import json
import shutil
import tempfile
import time
from pathlib import Path

import numpy as np
import pytest

from benchmarks.common import env_int
from repro.models.token_classifier import TokenClassifier
from repro.models.training import FineTuneConfig, fit_token_classifier
from repro.nn.encoder import EncoderConfig
from repro.runtime.checkpoint import CheckpointManager
from repro.runtime.errors import ModelError
from repro.runtime.resilience import FaultInjector, FaultSpec

OVERHEAD_TARGET_PCT = 5.0
RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_checkpoint.json"

ENCODER = EncoderConfig(
    vocab_size=400,
    dim=64,
    num_layers=2,
    num_heads=4,
    ffn_dim=128,
    max_len=48,
    dropout=0.1,
)


def _build_model(seed: int = 7) -> TokenClassifier:
    return TokenClassifier(ENCODER, num_labels=6, rng=np.random.default_rng(seed))


def _build_dataset(num: int = 48) -> tuple[list[list[int]], list[list[int]]]:
    rng = np.random.default_rng(0)
    sequences = [
        [int(x) for x in rng.integers(1, 400, size=int(rng.integers(24, 48)))]
        for __ in range(num)
    ]
    labels = [[x % 6 for x in seq] for seq in sequences]
    return sequences, labels


def _states_identical(left: dict, right: dict) -> bool:
    return sorted(left) == sorted(right) and all(
        np.asarray(left[k]).tobytes() == np.asarray(right[k]).tobytes()
        for k in left
    )


def run_checkpoint_overhead(
    rounds: int | None = None, epochs: int | None = None, seed: int = 0
) -> dict:
    """Time no-checkpoint vs. every-1 vs. every-10 on identical runs."""
    rounds = rounds or env_int("REPRO_BENCH_ROUNDS", 3)
    epochs = epochs or env_int("REPRO_BENCH_EPOCHS", 8)
    config = FineTuneConfig(epochs=epochs, batch_size=16, seed=13 + seed)
    sequences, labels = _build_dataset()
    modes = ("baseline", "every_1", "every_10")
    timings: dict[str, list[float]] = {mode: [] for mode in modes}
    states: dict[str, dict] = {}
    histories: dict[str, list[float]] = {}
    saves = {"every_1": 0, "every_10": 0}
    workdir = Path(tempfile.mkdtemp(prefix="bench-checkpoint-"))
    try:
        # Interleave modes within each round so clock drift and cache
        # state hit all three equally; round 0 is warmup.
        for round_index in range(rounds + 1):
            for mode in modes:
                model = _build_model()
                manager = None
                if mode != "baseline":
                    ckpt_dir = workdir / f"{mode}-{round_index}"
                    every = 1 if mode == "every_1" else 10
                    manager = CheckpointManager(ckpt_dir, every=every)
                start = time.perf_counter()
                history = fit_token_classifier(
                    model, sequences, labels, config, checkpoint=manager
                )
                elapsed = time.perf_counter() - start
                if round_index > 0:
                    timings[mode].append(elapsed)
                states[mode] = model.state_dict()
                histories[mode] = history
                if manager is not None:
                    saves[mode] = manager.saves

        # Checkpointing must never change the training result.
        bitwise_identical = all(
            _states_identical(states["baseline"], states[mode])
            and histories["baseline"] == histories[mode]
            for mode in ("every_1", "every_10")
        )

        # Kill mid-run, resume, and demand the uninterrupted result.
        total_steps = epochs * ((len(sequences) + 15) // 16)
        kill_at = max(2, total_steps // 2)
        crash_dir = workdir / "resume"
        injector = FaultInjector(
            [FaultSpec(stage="train_step", error="model", nth_calls=(kill_at,))],
            seed=1,
        )
        try:
            fit_token_classifier(
                _build_model(), sequences, labels, config,
                checkpoint=CheckpointManager(
                    crash_dir, every=1, fault_injector=injector
                ),
            )
            raise AssertionError("injected crash did not fire")
        except ModelError:
            pass
        resumed = _build_model()
        resume_manager = CheckpointManager(crash_dir, every=1)
        resumed_history = fit_token_classifier(
            resumed, sequences, labels, config, checkpoint=resume_manager
        )
        resume_identical = (
            _states_identical(states["baseline"], resumed.state_dict())
            and resumed_history == histories["baseline"]
            and resume_manager.resumed_from == kill_at - 1
        )
    finally:
        shutil.rmtree(workdir, ignore_errors=True)

    best = {mode: min(timings[mode]) for mode in modes}

    def overhead(mode: str) -> float:
        if not best["baseline"]:
            return 0.0
        return (best[mode] - best["baseline"]) / best["baseline"] * 100.0

    report = {
        "config": {
            "rounds": rounds,
            "epochs": epochs,
            "seed": seed,
            "num_sequences": len(sequences),
            "batch_size": 16,
            "total_steps": total_steps,
        },
        "baseline_seconds": best["baseline"],
        "every_1_seconds": best["every_1"],
        "every_10_seconds": best["every_10"],
        "baseline_all_rounds": timings["baseline"],
        "every_1_all_rounds": timings["every_1"],
        "every_10_all_rounds": timings["every_10"],
        "saves_every_1": saves["every_1"],
        "saves_every_10": saves["every_10"],
        "overhead_pct_every_1": overhead("every_1"),
        "overhead_pct_every_10": overhead("every_10"),
        "target_pct": OVERHEAD_TARGET_PCT,
        "within_target": overhead("every_10") < OVERHEAD_TARGET_PCT,
        "bitwise_identical": bitwise_identical,
        "resume_bitwise_identical": resume_identical,
        "resumed_from_step": kill_at - 1,
    }
    RESULT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    return report


@pytest.mark.benchmark(group="runtime")
@pytest.mark.checkpoint
def test_checkpoint_overhead(benchmark):
    report = benchmark.pedantic(run_checkpoint_overhead, rounds=1, iterations=1)
    print()
    print(json.dumps(report, indent=2))
    # Durability must not change results, interrupted or not.
    assert report["bitwise_identical"]
    assert report["resume_bitwise_identical"]
    # The headline claim: every-10 checkpointing costs <5% wall clock.
    assert report["within_target"], (
        f"every-10 checkpoint overhead {report['overhead_pct_every_10']:.2f}% "
        f"exceeds {OVERHEAD_TARGET_PCT}% target"
    )


if __name__ == "__main__":
    print(json.dumps(run_checkpoint_overhead(), indent=2))
