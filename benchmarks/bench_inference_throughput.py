"""Inference throughput: length-bucketed runtime vs. naive arrival order.

Not a paper table — this bench backs the deployment story (Tables 5-7 push
37,871 pages through detect -> extract -> store) and gives Table 4's
"minutes" column trustworthy timing hooks. It measures the extractor's
``extract_batch`` and the full GoalSpotter pipeline under both batching
strategies on a mixed-length synthetic corpus, verifies the bucketed plan
produces bitwise-identical logits, and emits everything as JSON.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_inference_throughput.py

or under pytest (``pytest benchmarks/bench_inference_throughput.py -s``).

Knobs: ``REPRO_BENCH_TEXTS`` (corpus size, default 400) and
``REPRO_BENCH_EPOCHS`` (training epochs, throughput-irrelevant, default 2).
"""

from __future__ import annotations

import dataclasses
import json

import numpy as np
import pytest

from benchmarks.common import env_int
from repro.core.extractor import ExtractorConfig, WeakSupervisionExtractor
from repro.datasets.generator import ObjectiveGenerator
from repro.datasets.reports import ReportGenerator
from repro.deploy import build_trained_pipeline
from repro.goalspotter.detector import DetectorConfig
from repro.models.training import FineTuneConfig


def build_mixed_length_corpus(
    objective_texts: list[str], num_texts: int, seed: int
) -> list[str]:
    """A corpus with heavy length skew: many short blocks, a long tail.

    This is the regime real report corpora live in (most blocks are a
    sentence; some are dense multi-objective paragraphs) and the one where
    arrival-order chunking pads worst.
    """
    rng = np.random.default_rng(seed)
    texts: list[str] = []
    for __ in range(num_texts):
        roll = rng.random()
        if roll < 0.55:
            count = 1  # single objective, short
        elif roll < 0.85:
            count = 2
        else:
            count = int(rng.integers(4, 7))  # dense paragraph, hits max_len
        picks = rng.integers(0, len(objective_texts), size=count)
        texts.append(" ".join(objective_texts[pick] for pick in picks))
    return texts


def _train_extractor(epochs: int, seed: int) -> WeakSupervisionExtractor:
    objectives = ObjectiveGenerator(seed=seed).generate_many(120)
    config = ExtractorConfig(
        finetune=FineTuneConfig(epochs=epochs, learning_rate=1e-3)
    )
    return WeakSupervisionExtractor(config).fit(objectives)


def _with_batching(
    extractor: WeakSupervisionExtractor, batching: str
) -> WeakSupervisionExtractor:
    """A view of a fitted extractor running under another batching policy."""
    clone = WeakSupervisionExtractor(
        dataclasses.replace(extractor.config, batching=batching),
        tokenizer=extractor.tokenizer,
    )
    clone.model = extractor.model
    return clone


def run_extractor_throughput(
    num_texts: int = 400, epochs: int = 2, seed: int = 0
) -> dict:
    """Time ``extract_batch`` arrival-order vs. bucketed; verify equality."""
    extractor = _train_extractor(epochs=epochs, seed=seed)
    corpus_objectives = ObjectiveGenerator(seed=seed + 1).generate_many(60)
    texts = build_mixed_length_corpus(
        [objective.text for objective in corpus_objectives],
        num_texts=num_texts,
        seed=seed + 2,
    )

    runs: dict[str, dict] = {}
    results: dict[str, list[dict[str, str]]] = {}
    for batching in ("arrival", "bucketed"):
        view = _with_batching(extractor, batching)
        extractor.tokenizer.clear_cache()  # symmetric cold start
        results[batching] = view.extract_batch(texts)
        runs[batching] = view.last_run_stats.as_dict()

    # Bitwise logit equivalence between the two plans, on the same ids.
    sequences: list[list[int]] = []
    for text in texts:
        tokens = extractor.word_tokenizer.tokenize(extractor._normalize(text))
        if tokens:
            encoding = extractor.tokenizer.encode(
                [token.text for token in tokens]
            )
            sequences.append(list(encoding.ids))
    naive_logits = extractor.model.predict_logits(
        sequences, sort_by_length=False
    )
    bucketed_logits = extractor.model.predict_logits(
        sequences, token_budget=extractor.config.token_budget
    )
    logits_identical = all(
        np.array_equal(naive, bucketed)
        for naive, bucketed in zip(naive_logits, bucketed_logits)
    )

    arrival_tps = runs["arrival"]["tokens_per_second"]
    bucketed_tps = runs["bucketed"]["tokens_per_second"]
    return {
        "arrival": runs["arrival"],
        "bucketed": runs["bucketed"],
        "speedup": bucketed_tps / arrival_tps if arrival_tps else 0.0,
        "logits_identical": bool(logits_identical),
        "results_identical": results["arrival"] == results["bucketed"],
        "_extractor": extractor,  # reused by the pipeline stage; stripped
    }


def run_pipeline_throughput(
    extractor: WeakSupervisionExtractor,
    seed: int = 0,
    num_pages: int = 30,
    detector_blocks: int = 240,
) -> dict:
    """Time the full GoalSpotter detect -> extract pipeline both ways."""
    pipeline = build_trained_pipeline(
        train_dataset=None,
        seed=seed,
        detector_blocks=detector_blocks,
        detector_config=DetectorConfig(
            finetune=FineTuneConfig(epochs=2, learning_rate=1e-3)
        ),
        extractor=extractor,
    )
    report = ReportGenerator(seed=seed + 3).generate_report(
        company="BenchCorp",
        report_id="bench-2026",
        num_pages=num_pages,
        num_objectives=max(4, num_pages // 3),
    )

    runs: dict[str, dict] = {}
    for batching in ("arrival", "bucketed"):
        pipeline.extractor = _with_batching(extractor, batching)
        extractor.tokenizer.clear_cache()
        pipeline.process_report(report)
        stats = dict(pipeline.last_run_stats)
        stats["pages"] = num_pages
        stats["pages_per_second"] = (
            num_pages / stats["wall_seconds"]
            if stats["wall_seconds"] > 0
            else 0.0
        )
        runs[batching] = stats

    arrival_wall = runs["arrival"]["wall_seconds"]
    bucketed_wall = runs["bucketed"]["wall_seconds"]
    return {
        "arrival": runs["arrival"],
        "bucketed": runs["bucketed"],
        "speedup": arrival_wall / bucketed_wall if bucketed_wall else 0.0,
    }


def run_throughput_benchmark(
    num_texts: int | None = None,
    epochs: int | None = None,
    seed: int = 0,
    num_pages: int = 30,
    detector_blocks: int = 240,
) -> dict:
    """The full benchmark; returns the JSON-ready report."""
    num_texts = num_texts or env_int("REPRO_BENCH_TEXTS", 400)
    epochs = epochs or env_int("REPRO_BENCH_EPOCHS", 2)
    extractor_report = run_extractor_throughput(
        num_texts=num_texts, epochs=epochs, seed=seed
    )
    extractor = extractor_report.pop("_extractor")
    pipeline_report = run_pipeline_throughput(
        extractor,
        seed=seed,
        num_pages=num_pages,
        detector_blocks=detector_blocks,
    )
    return {
        "config": {
            "num_texts": num_texts,
            "epochs": epochs,
            "seed": seed,
            "num_pages": num_pages,
        },
        "extractor": extractor_report,
        "pipeline": pipeline_report,
    }


@pytest.mark.benchmark(group="runtime")
def test_inference_throughput(benchmark):
    report = benchmark.pedantic(
        run_throughput_benchmark, rounds=1, iterations=1
    )
    print()
    print(json.dumps(report, indent=2))
    assert report["extractor"]["logits_identical"]
    assert report["extractor"]["results_identical"]
    # The headline claim: bucketed batching >= 1.5x extract_batch
    # throughput on a mixed-length corpus.
    assert report["extractor"]["speedup"] >= 1.5
    assert report["extractor"]["bucketed"]["padding_waste"] <= (
        report["extractor"]["arrival"]["padding_waste"]
    )
    assert report["extractor"]["bucketed"]["bpe_cache_hit_rate"] > 0.5


if __name__ == "__main__":
    print(json.dumps(run_throughput_benchmark(), indent=2))
