"""Shared infrastructure for the benchmark harness.

Every benchmark regenerates one table or figure of the paper and prints a
paper-vs-measured comparison. Knobs (environment variables):

* ``REPRO_BENCH_RUNS`` — independent runs per approach for Table 4
  (default 1; the paper uses 5 — set 5 to match the full protocol).
* ``REPRO_BENCH_EPOCHS`` — fine-tuning epochs (default 10, the paper's).
* ``REPRO_BENCH_SCALE`` — deployment corpus scale for Tables 5-7
  (default 1.0 = the paper's full 380 documents / 37,871 pages).
"""

from __future__ import annotations

import os

from repro.core.extractor import ExtractorConfig, WeakSupervisionExtractor
from repro.models.training import FineTuneConfig

#: Paper Table 4 (for the printed paper-vs-measured comparison).
PAPER_TABLE4 = {
    "netzerofacts": {
        "Conditional Random Fields": (0.64, 0.59, 0.61),
        "Zero-Shot Prompting": (0.63, 0.65, 0.64),
        "Few-Shot Prompting": (0.70, 0.94, 0.80),
        "GoalSpotter": (0.87, 0.83, 0.85),
    },
    "sustainability-goals": {
        "Conditional Random Fields": (0.60, 0.86, 0.71),
        "Zero-Shot Prompting": (0.71, 0.86, 0.78),
        "Few-Shot Prompting": (0.81, 0.96, 0.88),
        "GoalSpotter": (0.89, 0.95, 0.92),
    },
}


def env_int(name: str, default: int) -> int:
    return int(os.environ.get(name, default))


def env_float(name: str, default: float) -> float:
    return float(os.environ.get(name, default))


def bench_runs() -> int:
    return env_int("REPRO_BENCH_RUNS", 1)


def bench_epochs() -> int:
    return env_int("REPRO_BENCH_EPOCHS", 10)


def bench_scale() -> float:
    return env_float("REPRO_BENCH_SCALE", 1.0)


def default_extractor_config(
    fields=None, epochs: int | None = None, **overrides
) -> ExtractorConfig:
    """The paper's default prototype configuration on our substrate."""
    kwargs = dict(
        finetune=FineTuneConfig(
            epochs=epochs or bench_epochs(), learning_rate=1e-3
        ),
    )
    if fields is not None:
        kwargs["fields"] = tuple(fields)
    kwargs.update(overrides)
    return ExtractorConfig(**kwargs)


def make_goalspotter_extractor(seed: int, fields=None):
    config = default_extractor_config(fields=fields)
    extractor = WeakSupervisionExtractor(config)
    extractor.name = "GoalSpotter"
    return extractor


def print_paper_vs_measured(
    dataset_key: str, approach: str, measured: tuple[float, float, float]
) -> None:
    paper = PAPER_TABLE4.get(dataset_key, {}).get(approach)
    if paper is None:
        return
    print(
        f"    paper    P {paper[0]:.2f} R {paper[1]:.2f} F {paper[2]:.2f}"
        f" | measured P {measured[0]:.2f} R {measured[1]:.2f} "
        f"F {measured[2]:.2f}"
    )
