"""Per-task train + inference throughput across the whole registry.

The task registry (:mod:`repro.tasks`, DESIGN §6h) promises that every
registered workload — the paper's GoalSpotter plus the three new
tenants — rides the same substrate with the same bitwise contracts.
This bench trains each task's golden-recipe model, measures training
and batch-inference throughput, re-asserts the conformance identities
in-bench (batched == sequential, ``workers=2`` == direct), and writes
``BENCH_tasks.json`` at the repo root:

* per task: train seconds / examples per second, inference texts and
  tokens-equivalent throughput, weak-label coverage, eval metrics;
* per task: the two identity checks, plus an ``all_identical`` rollup
  the artifact test pins to ``True``.

Throughput numbers are host-dependent and not gated; the headline
guarantee is *identity across the registry*, recorded on any machine.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_tasks.py

or under pytest (``pytest benchmarks/bench_tasks.py -s``).

Knobs: ``REPRO_BENCH_TASKS_EVAL_REPEAT`` (how many times the eval slice
is tiled for the throughput measurement, default 4).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from benchmarks.common import env_int
from repro.tasks import load_all_tasks

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_tasks.json"


def _bench_one_task(task, eval_repeat: int) -> dict:
    recipe = task.golden_recipe()
    train = task.build_dataset(seed=recipe.train_seed, size=recipe.train_size)
    model = task.build_model(recipe.profile)

    start = time.perf_counter()
    model.fit(train)
    train_seconds = time.perf_counter() - start

    eval_dataset = task.build_dataset(
        seed=recipe.eval_seed, size=recipe.eval_size
    )
    texts = [o.text for o in eval_dataset.objectives] * eval_repeat

    model.run_batch(texts)  # warm BPE/normalization caches
    start = time.perf_counter()
    rows = model.run_batch(texts)
    infer_seconds = time.perf_counter() - start

    sequential = [model.run_batch([text])[0] for text in texts]
    parallel = model.run_batch_parallel(texts, workers=2, num_shards=2)

    return {
        "kind": task.kind,
        "train_examples": len(train),
        "train_seconds": train_seconds,
        "train_examples_per_second": (
            len(train) / train_seconds if train_seconds > 0 else 0.0
        ),
        "infer_texts": len(texts),
        "infer_seconds": infer_seconds,
        "infer_texts_per_second": (
            len(texts) / infer_seconds if infer_seconds > 0 else 0.0
        ),
        "weak_coverage": model.weak_summary()["coverage"],
        "metrics": task.evaluate(model, eval_dataset),
        "conformance": {
            "batched_equals_sequential": rows == sequential,
            "parallel_equals_direct": rows == parallel,
        },
    }


def run_tasks_bench() -> dict:
    """Train + measure every registered task; assert identity in-bench."""
    eval_repeat = env_int("REPRO_BENCH_TASKS_EVAL_REPEAT", 4)
    tasks = load_all_tasks()
    per_task = {
        name: _bench_one_task(task, eval_repeat)
        for name, task in sorted(tasks.items())
    }
    report = {
        "config": {"eval_repeat": eval_repeat, "profile": "tiny"},
        "cpu_count": os.cpu_count() or 1,
        "tasks": per_task,
        "all_identical": all(
            all(entry["conformance"].values()) for entry in per_task.values()
        ),
    }
    RESULT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    return report


@pytest.mark.benchmark(group="tasks")
@pytest.mark.tasks
def test_tasks_throughput(benchmark):
    report = benchmark.pedantic(run_tasks_bench, iterations=1, rounds=1)
    print()
    print(json.dumps(report, indent=2))
    assert len(report["tasks"]) >= 4
    # The headline guarantee holds on any machine: the whole registry
    # produces bitwise-identical rows batched, sequential, and parallel.
    assert report["all_identical"]


if __name__ == "__main__":
    print(json.dumps(run_tasks_bench(), indent=2))
