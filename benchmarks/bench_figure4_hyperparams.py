"""Figure 4 (epochs & learning-rate panels): convergence behaviour.

The paper finds that, within typical ranges, neither the number of epochs
nor the learning rate changes convergence much: with lr 5e-5 the model
peaks around 10 epochs. On our from-scratch substrate the typical range is
shifted upward (~1e-3; see DESIGN.md), but the *shape* — a plateau across
the typical range, convergence by ~10 epochs — is what this bench checks.

The epochs panel trains once with an evaluation callback, scoring the
model after selected epochs (cheaper and less noisy than independent
runs). The LR panel trains once per learning rate.
"""

from __future__ import annotations

import pytest

from benchmarks.common import default_extractor_config
from repro.core.extractor import WeakSupervisionExtractor
from repro.datasets.base import train_test_split
from repro.eval import evaluate_extractions, render_table
from repro.eval.figures import render_bars
from repro.models.training import FineTuneConfig, fit_token_classifier

EPOCH_CHECKPOINTS = (1, 2, 3, 5, 8, 10, 12)
LEARNING_RATES = (3e-4, 1e-3, 3e-3)


def _evaluate(extractor, test, fields):
    predictions = extractor.extract_batch([o.text for o in test.objectives])
    return evaluate_extractions(
        predictions, [o.details for o in test.objectives], fields
    ).f1


@pytest.mark.benchmark(group="figure4")
def test_figure4_epochs(benchmark, sustainability_goals):
    train, test = train_test_split(sustainability_goals, 0.2, seed=0)

    def run():
        config = default_extractor_config(epochs=max(EPOCH_CHECKPOINTS))
        extractor = WeakSupervisionExtractor(config)
        f1_by_epoch: dict[int, float] = {}

        # Mirror fit() but checkpoint-evaluate via the epoch callback.
        word_sequences, label_sequences = extractor.prepare_weak_labels(
            train.objectives
        )
        from repro.text.bpe import BpeTokenizer

        extractor.tokenizer = BpeTokenizer.train(
            (word for words in word_sequences for word in words),
            num_merges=config.num_merges,
        )
        from repro.core.alignment import word_labels_to_piece_targets
        import numpy as np
        from repro.models.token_classifier import TokenClassifier
        from repro.models.zoo import get_model_spec

        pieces, targets = [], []
        for words, labels in zip(word_sequences, label_sequences):
            encoding = extractor.tokenizer.encode(words)
            pieces.append(list(encoding.ids))
            targets.append(
                word_labels_to_piece_targets(
                    labels, encoding.word_ids, extractor.scheme,
                    config.subword_strategy,
                )
            )
        rng = np.random.default_rng(config.seed)
        spec = get_model_spec(config.model)
        encoder_config = spec.encoder_config(
            len(extractor.tokenizer.vocab), config.max_len
        )
        extractor.model = TokenClassifier(
            encoder_config, len(extractor.scheme), rng
        )
        class_weights = np.ones(len(extractor.scheme))
        class_weights[extractor.scheme.id_of("O")] = config.outside_weight

        def on_epoch_end(epoch: int, loss: float) -> None:
            if (epoch + 1) in EPOCH_CHECKPOINTS:
                f1_by_epoch[epoch + 1] = _evaluate(
                    extractor, test, sustainability_goals.fields
                )
                extractor.model.train()

        fit_token_classifier(
            extractor.model, pieces, targets, config.finetune,
            on_epoch_end=on_epoch_end, class_weights=class_weights,
        )
        return f1_by_epoch

    f1_by_epoch = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [[str(e), f"{f1_by_epoch[e]:.2f}"] for e in EPOCH_CHECKPOINTS]
    print()
    print(
        render_table(
            ["Epochs", "F1"], rows,
            title="Figure 4 — effect of the number of epochs",
        )
    )
    print()
    print(
        render_bars(
            {str(e): f1_by_epoch[e] for e in EPOCH_CHECKPOINTS},
            title="F1 by fine-tuning epochs",
            maximum=1.0,
        )
    )
    # Shape: converged by ~10 epochs (no large gain from 10 -> 12),
    # and 10 epochs is far better than 1.
    assert f1_by_epoch[10] > f1_by_epoch[1]
    assert abs(f1_by_epoch[12] - f1_by_epoch[10]) < 0.08


@pytest.mark.benchmark(group="figure4")
def test_figure4_learning_rate(benchmark, sustainability_goals):
    train, test = train_test_split(sustainability_goals, 0.2, seed=0)

    def run():
        results = {}
        for lr in LEARNING_RATES:
            config = default_extractor_config()
            config = default_extractor_config(
                finetune=FineTuneConfig(
                    epochs=config.finetune.epochs, learning_rate=lr
                )
            )
            extractor = WeakSupervisionExtractor(config)
            extractor.fit(train.objectives)
            results[lr] = _evaluate(
                extractor, test, sustainability_goals.fields
            )
            print(f"  lr={lr:g}: F1 {results[lr]:.3f}")
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [[f"{lr:g}", f"{f1:.2f}"] for lr, f1 in results.items()]
    print()
    print(
        render_table(
            ["Learning rate", "F1"], rows,
            title="Figure 4 — effect of the learning rate",
        )
    )
    # Shape: a plateau across the typical range — the spread between the
    # best and worst typical learning rate stays moderate.
    values = list(results.values())
    assert max(values) - min(values) < 0.25
