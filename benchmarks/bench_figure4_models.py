"""Figure 4 (model panel): RoBERTa vs BERT vs distilled variants.

The paper finds RoBERTa slightly above BERT and the original models
slightly above their distilled versions, with distilled models faster.
We pre-train all four zoo variants with their respective recipes (dynamic
vs static masking; distillation for distil*) on the same unlabeled block
corpus — cached on disk after the first run — then fine-tune each on the
weak labels and compare.

Expected shape: roberta >= distilroberta and bert >= distilbert on F1;
distilled variants fine-tune faster (fewer layers).
"""

from __future__ import annotations

import time

import pytest

from benchmarks.common import bench_epochs, default_extractor_config
from repro.core.extractor import WeakSupervisionExtractor
from repro.datasets.base import train_test_split
from repro.eval import evaluate_extractions, render_table
from repro.models.pretrained import pretrain_for_domain

VARIANTS = ("roberta", "bert", "distilroberta", "distilbert")


@pytest.mark.benchmark(group="figure4")
def test_figure4_model_selection(benchmark, sustainability_goals):
    train, test = train_test_split(sustainability_goals, 0.2, seed=0)
    test_texts = [o.text for o in test.objectives]
    test_gold = [o.details for o in test.objectives]

    def run():
        rows = []
        scores = {}
        for variant in VARIANTS:
            tokenizer, encoder = pretrain_for_domain(
                variant, seed=0, corpus_blocks=1500
            )
            config = default_extractor_config(
                model=variant, epochs=bench_epochs()
            )
            extractor = WeakSupervisionExtractor(
                config, tokenizer=tokenizer, pretrained_encoder=encoder
            )
            start = time.perf_counter()
            extractor.fit(train.objectives)
            fit_minutes = (time.perf_counter() - start) / 60
            predictions = extractor.extract_batch(test_texts)
            report = evaluate_extractions(
                predictions, test_gold, sustainability_goals.fields
            )
            scores[variant] = (report.f1, fit_minutes)
            rows.append(
                [
                    variant,
                    f"{report.precision:.2f}",
                    f"{report.recall:.2f}",
                    f"{report.f1:.2f}",
                    f"{fit_minutes:.1f}",
                ]
            )
            print(f"  {variant}: F1 {report.f1:.3f} ({fit_minutes:.1f} min)")
        return rows, scores

    rows, scores = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(
        render_table(
            ["Model", "P", "R", "F1", "fine-tune (min)"],
            rows,
            title="Figure 4 — effect of the transformer model",
        )
    )
    # Distilled models are shallower, so they must fine-tune faster.
    assert scores["distilroberta"][1] < scores["roberta"][1]
    assert scores["distilbert"][1] < scores["bert"][1]
