"""Table 5: post-deployment corpus summary.

Runs the integrated GoalSpotter pipeline (detector + detail extractor)
over the 14-company deployment corpus — at ``REPRO_BENCH_SCALE`` (default
1.0 = the paper's full 380 documents, 37,871 pages, 3,580 objectives) —
and prints the per-company documents / pages / extracted-objectives
summary next to the paper's numbers.

Expected shape: documents and pages match the paper exactly (the corpus is
generated to those counts); extracted objectives are close to the paper's
per-company counts (detector recall is high but not perfect, and some
noise blocks are false positives).
"""

from __future__ import annotations

import pytest

from benchmarks.common import bench_scale
from repro.datasets.reports import DEPLOYMENT_COMPANIES, build_deployment_corpus
from repro.deploy import run_scenario_1
from repro.eval import render_table


@pytest.mark.benchmark(group="deployment")
def test_table5_deployment_summary(benchmark, deployment_pipeline):
    scale = bench_scale()
    reports = build_deployment_corpus(seed=7, scale=scale)

    result = benchmark.pedantic(
        lambda: run_scenario_1(deployment_pipeline, reports=reports),
        rounds=1,
        iterations=1,
    )

    paper = {name: (d, p, o) for name, d, p, o in DEPLOYMENT_COMPANIES}
    rows = []
    for company, docs, pages, detected in result.summary_rows:
        paper_docs, paper_pages, paper_objectives = paper[company]
        rows.append(
            [
                company,
                f"{docs} / {round(paper_docs * scale)}",
                f"{pages} / {round(paper_pages * scale)}",
                f"{detected} / {round(paper_objectives * scale)}",
            ]
        )
    docs, pages, detected = result.totals
    rows.append(
        [
            "Total",
            f"{docs} / {round(380 * scale)}",
            f"{pages} / {round(37871 * scale)}",
            f"{detected} / {round(3580 * scale)}",
        ]
    )
    print()
    print(
        render_table(
            ["Company", "#Docs (ours/paper)", "#Pages (ours/paper)",
             "#Extracted (ours/paper)"],
            rows,
            title=f"Table 5 — post-deployment summary (scale={scale:g})",
        )
    )
    result.store.close()

    # Shape assertions: structural counts match the paper by construction;
    # detected objectives within a reasonable band of the generated truth.
    assert docs == sum(
        max(1, round(d * scale)) for __, d, *__rest in DEPLOYMENT_COMPANIES
    )
    expected_objectives = 3580 * scale
    assert 0.6 * expected_objectives <= detected <= 2.0 * expected_objectives
