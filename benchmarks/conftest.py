"""Session-scoped fixtures shared across benchmarks.

The deployment pipeline (detector + extractor) takes minutes to train, so
Tables 5-7 share one trained instance.
"""

from __future__ import annotations

import pytest

from benchmarks.common import bench_epochs
from repro.core.extractor import ExtractorConfig
from repro.datasets import build_netzerofacts, build_sustainability_goals
from repro.deploy import build_trained_pipeline
from repro.models.training import FineTuneConfig


@pytest.fixture(scope="session")
def sustainability_goals():
    return build_sustainability_goals(seed=1)


@pytest.fixture(scope="session")
def netzerofacts():
    return build_netzerofacts(seed=1)


@pytest.fixture(scope="session")
def deployment_pipeline(sustainability_goals):
    """Detector + extractor trained once for Tables 5, 6, and 7."""
    return build_trained_pipeline(
        sustainability_goals,
        seed=0,
        detector_blocks=1200,
        extractor_config=ExtractorConfig(
            finetune=FineTuneConfig(
                epochs=bench_epochs(), learning_rate=1e-3
            )
        ),
    )
