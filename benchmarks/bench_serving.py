"""Online-serving benchmark: dynamic micro-batching vs. batch-size-1.

Drives a :class:`repro.serve.ServingEngine` over a deterministic untrained
backend (real tokenizer + transformer forward passes, seeded weights) with
closed-loop levels at increasing client concurrency plus one open-loop
level on a seeded Poisson arrival schedule. Every level runs twice — with
the dynamic micro-batcher, and with ``max_batch_requests=1`` (the
request-at-a-time baseline) — and the report compares throughput and p95
latency at the heaviest level. The headline claim: micro-batching beats
batch-size-1 serving on throughput at equal or better p95.

The request schedule, backend weights, and request texts are all pure
functions of the seed; wall-clock latencies of course vary by machine.
Writes ``BENCH_serving.json`` at the repo root.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_serving.py

or under pytest (``pytest benchmarks/bench_serving.py -s``).

Knobs: ``REPRO_BENCH_SERVE_REQUESTS`` (requests at the heaviest level,
default 192), ``REPRO_BENCH_SERVE_WORKERS`` (worker threads, default 2).
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from benchmarks.common import env_int
from repro.serve.loadgen import LoadLevel, run_serving_bench

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_serving.json"


def default_levels(num_requests: int) -> list[LoadLevel]:
    """Three closed-loop concurrency steps plus one open-loop level."""
    return [
        LoadLevel("closed-1", "closed", 1, max(8, num_requests // 4)),
        LoadLevel("closed-4", "closed", 4, max(16, num_requests // 2)),
        LoadLevel("open-300rps", "open", 300.0, max(16, num_requests // 2)),
        LoadLevel("closed-16", "closed", 16, num_requests),
    ]


def run_serving_benchmark(
    num_requests: int | None = None,
    num_workers: int | None = None,
    seed: int = 0,
    write_report: bool = True,
) -> dict:
    """Run all levels in both modes and (by default) write the report."""
    num_requests = num_requests or env_int("REPRO_BENCH_SERVE_REQUESTS", 192)
    num_workers = num_workers or env_int("REPRO_BENCH_SERVE_WORKERS", 2)
    report = run_serving_bench(
        default_levels(num_requests),
        seed=seed,
        num_texts=48,
        num_workers=num_workers,
    )
    if write_report:
        RESULT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    return report


@pytest.mark.benchmark(group="serving")
def test_microbatching_beats_batch1_serving(benchmark):
    report = benchmark.pedantic(run_serving_benchmark, rounds=1, iterations=1)
    print()
    print(json.dumps(report["comparison"], indent=2))
    assert len(report["levels"]) >= 3
    comparison = report["comparison"]
    assert comparison["throughput_speedup"] > 1.0, (
        f"micro-batching only reached "
        f"{comparison['throughput_speedup']:.2f}x of batch-1 throughput"
    )
    assert comparison["microbatch_wins"], (
        "micro-batching did not beat batch-size-1 serving at equal-or-"
        f"better p95: {json.dumps(comparison, indent=2)}"
    )


if __name__ == "__main__":
    print(json.dumps(run_serving_benchmark(), indent=2))
