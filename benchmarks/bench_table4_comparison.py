"""Table 4: effectiveness and efficiency versus the baselines.

Regenerates the paper's headline comparison — CRF, zero-shot prompting,
few-shot prompting, and GoalSpotter (the weak-supervision transformer) on
NetZeroFacts and Sustainability Goals — with the paper's protocol (80/20
split; ``REPRO_BENCH_RUNS`` independent runs, paper uses 5).

Expected shape (not absolute numbers): GoalSpotter best F1 on both
datasets; few-shot > zero-shot; CRF trains fastest; prompting has the
largest (simulated) inference latency.
"""

from __future__ import annotations

import pytest

from benchmarks.common import (
    bench_runs,
    make_goalspotter_extractor,
    print_paper_vs_measured,
)
from repro.core.schema import NETZEROFACTS_FIELDS, SUSTAINABILITY_FIELDS
from repro.crf import CrfDetailExtractor
from repro.eval import render_table
from repro.eval.protocol import run_comparison
from repro.llm import PromptingExtractor


def _approaches(fields):
    return [
        (
            "Conditional Random Fields",
            lambda seed: CrfDetailExtractor(fields=fields),
        ),
        (
            "Zero-Shot Prompting",
            lambda seed: PromptingExtractor("zero", fields=fields, seed=seed),
        ),
        (
            "Few-Shot Prompting",
            lambda seed: PromptingExtractor("few", fields=fields, seed=seed),
        ),
        (
            "GoalSpotter",
            lambda seed: make_goalspotter_extractor(seed, fields=fields),
        ),
    ]


def _run_dataset(dataset, fields):
    rows = []
    results = []
    for name, factory in _approaches(fields):
        result = run_comparison(
            factory, dataset, name, runs=bench_runs(), test_fraction=0.2
        )
        results.append(result)
        rows.append(result)
        print(f"  {name}: F1 {result.f1:.3f}")
        print_paper_vs_measured(
            dataset.name, name, (result.precision, result.recall, result.f1)
        )
    return results


def _print_table(dataset_name, results):
    rows = [result.row() for result in results]
    print()
    print(
        render_table(
            ["Approach", "P", "R", "F", "T (min)"],
            rows,
            title=f"Table 4 — {dataset_name}",
        )
    )


@pytest.mark.benchmark(group="table4")
def test_table4_netzerofacts(benchmark, netzerofacts):
    results = benchmark.pedantic(
        lambda: _run_dataset(netzerofacts, NETZEROFACTS_FIELDS),
        rounds=1,
        iterations=1,
    )
    _print_table("NetZeroFacts", results)
    f1 = {result.approach: result.f1 for result in results}
    # Robust shape assertions from the paper. (The CRF's relative position
    # is reported but not asserted: on the synthetic corpus a well-featured
    # CRF is stronger than on the paper's real reports — see EXPERIMENTS.md.)
    assert f1["GoalSpotter"] > f1["Few-Shot Prompting"]
    assert f1["Few-Shot Prompting"] > f1["Zero-Shot Prompting"]


@pytest.mark.benchmark(group="table4")
def test_table4_sustainability_goals(benchmark, sustainability_goals):
    results = benchmark.pedantic(
        lambda: _run_dataset(sustainability_goals, SUSTAINABILITY_FIELDS),
        rounds=1,
        iterations=1,
    )
    _print_table("Sustainability Goals", results)
    f1 = {result.approach: result.f1 for result in results}
    assert f1["GoalSpotter"] > f1["Few-Shot Prompting"]
    assert f1["Few-Shot Prompting"] > f1["Zero-Shot Prompting"]
