"""Content-addressed result cache + int8 path: throughput and fidelity.

Backs the inference-cache tentpole: corpora of sustainability reports are
boilerplate-heavy (the same legal disclaimers, vision statements, and
restated objectives recur across reports and years), so a cross-request
result cache keyed by token content turns recomputation into lookups.
This bench measures ``extract_batch`` over a seeded request stream at
three repeat ratios (0%, 30%, 70% of blocks drawn from a boilerplate
pool), compares cached vs. uncached throughput **and** against the
committed pre-cache baseline in ``BENCH_inference_throughput.json``
(``extractor.bucketed.tokens_per_second``), and asserts cache-served
results are bitwise-identical to recomputation — both at the decoded
detail level and on raw logits.

The quantization half runs the int8 equivalence gate on the golden
25-report fixture (the frozen recipe from
``tests/integration/test_golden.py``): residual-coded int8 must keep
every top label identical and every score delta under a tight bound, and
the JSON records the gate report plus the weight-storage shrink.

Run standalone from the repo root::

    PYTHONPATH=src:. python benchmarks/bench_cache_quant.py

and commit the output as ``BENCH_cache_quant.json``. Under pytest, the
reduced-scale smoke level runs by default; the full sweep is ``slow``.

Knobs: ``REPRO_BENCH_TEXTS`` (stream size, default 400) and
``REPRO_BENCH_EPOCHS`` (training epochs, default 2).
"""

from __future__ import annotations

import dataclasses
import json
import os
import sys

import numpy as np
import pytest

from benchmarks.bench_inference_throughput import (
    _train_extractor,
    build_mixed_length_corpus,
)
from benchmarks.common import env_int
from repro.core.extractor import WeakSupervisionExtractor
from repro.datasets.generator import ObjectiveGenerator
from repro.nn.attention import MultiHeadSelfAttention
from repro.nn.layers import Linear
from repro.runtime.profiling import RunStats

#: Repeat ratios swept by the bench; the acceptance claim is >=2x at 0.7.
REPEAT_RATIOS = (0.0, 0.3, 0.7)

#: Distinct boilerplate blocks the repeated fraction is drawn from.
BOILERPLATE_POOL = 8

#: Result-cache capacity used for the cached runs.
CACHE_CAPACITY = 4096

#: Baseline artifact committed by ``bench_inference_throughput`` (PR 1's
#: bucketed batching, no result cache) that the speedup claim is against.
BASELINE_ARTIFACT = "BENCH_inference_throughput.json"

#: Score-delta bound for the int8 gate on the golden fixture. Residual
#: int8 coding lands around 1.5e-4 on this substrate; the bound leaves
#: headroom without ever excusing a label flip (labels are gated exactly).
GATE_BOUND = 1e-3


def build_repeat_stream(
    objective_texts: list[str],
    num_texts: int,
    repeat_ratio: float,
    seed: int,
) -> list[str]:
    """A request stream where ``repeat_ratio`` of blocks are boilerplate.

    The unique fraction reuses the mixed-length corpus builder (same
    length skew as the baseline bench); the repeated fraction cycles a
    small pool of fixed *dense paragraphs* (4-7 objectives each — real
    boilerplate is long: disclaimers, vision statements, restated goal
    lists), shuffled into the stream so repeats arrive interleaved with
    fresh work — the access pattern a cross-request cache actually sees.
    """
    rng = np.random.default_rng(seed)
    unique = build_mixed_length_corpus(
        objective_texts, num_texts=num_texts, seed=seed + 1
    )
    pool_rng = np.random.default_rng(seed + 2)
    pool = []
    for __ in range(BOILERPLATE_POOL):
        picks = pool_rng.integers(
            0, len(objective_texts), size=int(pool_rng.integers(4, 8))
        )
        pool.append(" ".join(objective_texts[pick] for pick in picks))
    stream = [
        pool[int(rng.integers(0, BOILERPLATE_POOL))]
        if rng.random() < repeat_ratio
        else unique[position]
        for position in range(num_texts)
    ]
    return stream


def _view(
    extractor: WeakSupervisionExtractor, capacity: int
) -> WeakSupervisionExtractor:
    """A view of a fitted extractor with its own result-cache capacity."""
    clone = WeakSupervisionExtractor(
        dataclasses.replace(
            extractor.config,
            batching="bucketed",
            result_cache_capacity=capacity,
            result_cache_seed=0,
        ),
        tokenizer=extractor.tokenizer,
    )
    clone.model = extractor.model
    return clone


def _run_stream(
    extractor: WeakSupervisionExtractor,
    stream: list[str],
    request_size: int,
) -> tuple[list[dict[str, str]], RunStats]:
    """Feed ``stream`` through ``extract_batch`` in request-sized chunks."""
    results: list[dict[str, str]] = []
    merged = RunStats()
    for start in range(0, len(stream), request_size):
        results.extend(extractor.extract_batch(stream[start : start + request_size]))
        merged = merged.merge(extractor.last_run_stats)
    return results, merged


def _logits_bitwise_identical(
    extractor: WeakSupervisionExtractor, stream: list[str]
) -> bool:
    """Cache-hit logits must be bit-for-bit the uncached forward's."""
    sequences: list[list[int]] = []
    for text in stream:
        tokens = extractor.word_tokenizer.tokenize(extractor._normalize(text))
        if tokens:
            encoding = extractor.tokenizer.encode(
                [token.text for token in tokens]
            )
            sequences.append(list(encoding.ids))
    budget = extractor.config.token_budget
    uncached = extractor.model.predict_logits(sequences, token_budget=budget)
    cache = _view(extractor, CACHE_CAPACITY).result_cache
    first = extractor.model.predict_logits(
        sequences, token_budget=budget, cache=cache
    )
    warm = extractor.model.predict_logits(
        sequences, token_budget=budget, cache=cache
    )
    return all(
        np.array_equal(base, cold) and np.array_equal(base, hot)
        for base, cold, hot in zip(uncached, first, warm)
    )


def run_cache_sweep(
    num_texts: int, epochs: int, seed: int = 0, request_size: int = 50
) -> dict:
    """Uncached vs. cached throughput at each repeat ratio."""
    extractor = _train_extractor(epochs=epochs, seed=seed)
    corpus_objectives = ObjectiveGenerator(seed=seed + 1).generate_many(60)
    objective_texts = [objective.text for objective in corpus_objectives]

    sweep: dict[str, dict] = {}
    for ratio in REPEAT_RATIOS:
        stream = build_repeat_stream(
            objective_texts,
            num_texts=num_texts,
            repeat_ratio=ratio,
            seed=seed + 10,
        )
        runs: dict[str, RunStats] = {}
        results: dict[str, list[dict[str, str]]] = {}
        for label, capacity in (("uncached", 0), ("cached", CACHE_CAPACITY)):
            view = _view(extractor, capacity)
            extractor.tokenizer.clear_cache()  # symmetric cold start
            results[label], runs[label] = _run_stream(
                view, stream, request_size
            )
        uncached_tps = runs["uncached"].tokens_per_second
        cached_tps = runs["cached"].tokens_per_second
        sweep[f"{ratio:.1f}"] = {
            "uncached": runs["uncached"].as_dict(),
            "cached": runs["cached"].as_dict(),
            "speedup_vs_uncached": (
                cached_tps / uncached_tps if uncached_tps else 0.0
            ),
            "results_identical": results["uncached"] == results["cached"],
            "logits_bitwise_identical": _logits_bitwise_identical(
                extractor, stream[: min(len(stream), 80)]
            ),
        }
    return sweep


def _weight_footprint(extractor: WeakSupervisionExtractor) -> dict:
    """fp32 vs. attached-int8 storage for every quantized weight."""
    fp32_bytes = 0
    int8_bytes = 0
    for child in extractor.model.modules():
        if isinstance(child, MultiHeadSelfAttention):
            if child._quant_fused is not None:
                fp32_bytes += 3 * child.query_proj.weight.value.nbytes
                int8_bytes += child._quant_fused.num_bytes
        elif isinstance(child, Linear) and child._quant is not None:
            fp32_bytes += child.weight.value.nbytes
            int8_bytes += child._quant.num_bytes
    return {
        "fp32_weight_bytes": fp32_bytes,
        "int8_weight_bytes": int8_bytes,
        "shrink": fp32_bytes / int8_bytes if int8_bytes else 0.0,
    }


def run_quant_gate() -> dict:
    """Int8 equivalence gate on the frozen golden 25-report fixture."""
    tests_dir = os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "tests"
    )
    if tests_dir not in sys.path:
        sys.path.insert(0, tests_dir)
    from integration.test_golden import (
        build_golden_corpus,
        build_golden_pipeline,
    )

    pipeline = build_golden_pipeline()
    corpus = build_golden_corpus()
    extractor = pipeline.extractor
    blocks = [
        block.text
        for report in corpus
        for page in report.pages
        for block in page.blocks
    ]
    report = extractor.enable_quantization(
        mode="int8", calibration_texts=blocks, max_score_delta=GATE_BOUND
    )
    footprint = _weight_footprint(extractor)
    extractor.disable_quantization()
    return {
        "gate": report.as_dict(),
        "calibration_blocks": len(blocks),
        "reports": len(corpus),
        **footprint,
    }


def run_cache_quant_benchmark(
    num_texts: int | None = None,
    epochs: int | None = None,
    seed: int = 0,
    with_quant_gate: bool = True,
) -> dict:
    """The full benchmark; returns the JSON-ready report."""
    num_texts = num_texts or env_int("REPRO_BENCH_TEXTS", 400)
    epochs = epochs or env_int("REPRO_BENCH_EPOCHS", 2)
    sweep = run_cache_sweep(num_texts=num_texts, epochs=epochs, seed=seed)

    baseline_tps = None
    baseline_path = os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        BASELINE_ARTIFACT,
    )
    if os.path.exists(baseline_path):
        with open(baseline_path, encoding="utf-8") as handle:
            baseline = json.load(handle)
        baseline_tps = baseline["extractor"]["bucketed"]["tokens_per_second"]
    for level in sweep.values():
        cached_tps = level["cached"]["tokens_per_second"]
        level["speedup_vs_baseline"] = (
            cached_tps / baseline_tps if baseline_tps else None
        )

    report = {
        "config": {
            "num_texts": num_texts,
            "epochs": epochs,
            "seed": seed,
            "repeat_ratios": list(REPEAT_RATIOS),
            "cache_capacity": CACHE_CAPACITY,
            "gate_bound": GATE_BOUND,
        },
        "baseline_tokens_per_second": baseline_tps,
        "sweep": sweep,
    }
    if with_quant_gate:
        report["quantization"] = run_quant_gate()
    return report


def _assert_sweep(report: dict, require_baseline_speedup: bool) -> None:
    for level in report["sweep"].values():
        assert level["results_identical"]
        assert level["logits_bitwise_identical"]
    hot = report["sweep"]["0.7"]
    assert hot["cached"]["result_cache_hits"] > 0
    assert hot["speedup_vs_uncached"] > 1.0
    if require_baseline_speedup:
        # The headline claim: >=2x extractor tokens/sec over the
        # committed pre-cache baseline at a 70% repeat ratio.
        assert hot["speedup_vs_baseline"] is not None
        assert hot["speedup_vs_baseline"] >= 2.0


@pytest.mark.smoke
@pytest.mark.cache
def test_cache_sweep_smoke():
    """Reduced-scale sweep: identity + hit-path speedup, no 2x claim."""
    report = run_cache_quant_benchmark(
        num_texts=60, epochs=1, with_quant_gate=False
    )
    _assert_sweep(report, require_baseline_speedup=False)


@pytest.mark.slow
@pytest.mark.cache
@pytest.mark.quant
@pytest.mark.benchmark(group="runtime")
def test_cache_quant_full(benchmark):
    """Full sweep + golden-fixture gate; the acceptance-level run."""
    report = benchmark.pedantic(
        run_cache_quant_benchmark, rounds=1, iterations=1
    )
    print()
    print(json.dumps(report, indent=2))
    _assert_sweep(report, require_baseline_speedup=True)
    assert report["quantization"]["gate"]["passed"]
    assert report["quantization"]["shrink"] > 1.9


if __name__ == "__main__":
    print(json.dumps(run_cache_quant_benchmark(), indent=2))
