"""Clean-path overhead of the durable run journal (DESIGN §6i).

The run journal buys crash-safety with a WAL append + fsync per
committed segment; this bench measures what that costs when nothing
crashes, and re-asserts the tentpole guarantee in-bench:

* **clean-path overhead** — the same corpus through the same segment
  plan with and without the journal (``run_batch`` per segment span vs
  ``run_journaled``), timed in paired order-alternated rounds; the
  committed artifact gates the cleanest round's ratio below 5% per
  task, isolating what the WAL itself costs;
* **kill + resume identity** — a run killed at a journal boundary and
  resumed must produce output byte-identical to the uninterrupted run;
* **workers=2 identity** — the supervised pool path must match the
  sequential journaled path byte-for-byte.

Writes ``BENCH_durable_runs.json`` at the repo root (pinned by
``tests/test_bench_artifacts.py``).

Run standalone::

    PYTHONPATH=src python benchmarks/bench_durable_runs.py

Two separable costs are reported. ``overhead_ratio`` (gated) compares
journaled execution against the identical segmented compute without a
journal — the delta is the WAL itself: digests, appends, fsyncs.
``monolithic_ratio`` (informational) compares against one whole-corpus
``run_batch`` call; it folds in the cost of *chunking* inference into
independently committable segments, which is the crash-window/
throughput knob (``--journal-segment``), not journal overhead — the
tiny numpy models here pay per-op Python dispatch per chunk, so small
segments inflate it far beyond what a real encoder would see.

Knobs: ``REPRO_BENCH_DURABLE_REPEAT`` (base corpus tiling, default 48),
``REPRO_BENCH_DURABLE_ROUNDS`` (best-of-N timing rounds, default 5),
``REPRO_BENCH_DURABLE_SEGMENT`` (base items per segment, default 96);
both bases are multiplied by the per-task scale in ``BENCH_TASKS``
(each task entry records its effective ``segment_items``).
"""

from __future__ import annotations

import json
import os
import statistics
import tempfile
import time
from pathlib import Path

import pytest

from benchmarks.common import env_int
from repro.runtime.errors import ReproError
from repro.runtime.parallel import estimate_text_cost
from repro.runtime.resilience import FaultInjector, FaultSpec
from repro.runtime.supervisor import plan_segments
from repro.tasks import get_task

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_durable_runs.json"

#: The overhead gate: journaled clean path within 5% of the plain path.
OVERHEAD_BOUND = 1.05

#: One task of each kind, matching the durable test suite. The scale
#: factor multiplies both the corpus tiling and the segment size so
#: each committed segment carries comparable compute across kinds —
#: classification is ~7x faster per text than extraction, and a
#: sub-5% gate needs segments big enough to dwarf a slow fsync.
BENCH_TASKS = (("goalspotter", 1), ("netzero-target", 6))

TRAIN_SIZE = 24


def _best_of(rounds: int, fn) -> float:
    best = float("inf")
    for __ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _timed(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def _paired_ratios(rounds: int, plain_fn, journaled_fn) -> dict:
    """Head-to-head rounds: each round times both arms back to back.

    Adjacent-in-time pairing cancels host-load drift that independent
    best-of-N cannot (each arm's min may land in different weather),
    and alternating which arm goes first cancels any steady slowdown
    within a round. The gate uses the *cleanest* round (min ratio) —
    the paired analogue of best-of-N timing: noise only ever inflates
    a round, so the smallest observed ratio is the best estimate of
    the true overhead. The median is reported alongside.
    """
    ratios = []
    plain_best = journaled_best = float("inf")
    for index in range(rounds):
        if index % 2 == 0:
            plain_seconds = _timed(plain_fn)
            journaled_seconds = _timed(journaled_fn)
        else:
            journaled_seconds = _timed(journaled_fn)
            plain_seconds = _timed(plain_fn)
        ratios.append(journaled_seconds / plain_seconds)
        plain_best = min(plain_best, plain_seconds)
        journaled_best = min(journaled_best, journaled_seconds)
    return {
        "plain_seconds": plain_best,
        "journaled_seconds": journaled_best,
        "overhead_ratio": min(ratios),
        "overhead_ratio_median": statistics.median(ratios),
    }


def _bench_one_task(
    name: str, repeat: int, rounds: int, segment_items: int
) -> dict:
    task = get_task(name)
    recipe = task.golden_recipe()
    train = task.build_dataset(seed=recipe.train_seed, size=TRAIN_SIZE)
    model = task.build_model("tiny").fit(train)
    corpus = task.build_dataset(seed=recipe.eval_seed, size=recipe.eval_size)
    texts = [o.text for o in corpus.objectives] * repeat

    baseline = model.run_batch(texts)  # also warms BPE/normalization caches
    monolithic_seconds = _best_of(rounds, lambda: model.run_batch(texts))

    # Fast tasks get extra rounds: the WAL delta is a few ms, so the
    # shorter an arm runs, the more rounds min-of-N needs to shake
    # scheduler noise out of a sub-5% gate.
    task_rounds = max(rounds, min(20, int(3.0 / max(monolithic_seconds, 1e-9))))

    # The no-journal arm of the gate: identical segment plan, no WAL.
    spans = plan_segments(
        [estimate_text_cost(text) for text in texts], segment_items
    )

    def segmented_plain():
        for span in spans:
            model.run_batch(texts[span.start : span.stop])

    def journaled(run_dir, **kwargs) -> list[dict]:
        kwargs.setdefault("segment_items", segment_items)
        pairs = model.run_journaled(texts, run_dir, **kwargs)
        return [row for row, __ in pairs]

    with tempfile.TemporaryDirectory() as tmp:
        counter = iter(range(10_000))

        def clean_run():
            journaled(Path(tmp) / f"clean-{next(counter)}")

        timing = _paired_ratios(task_rounds, segmented_plain, clean_run)
        plain_seconds = timing["plain_seconds"]
        journaled_seconds = timing["journaled_seconds"]

        num_segments = len(spans)

        # Kill at a mid-run journal boundary, then resume to completion.
        kill_dir = Path(tmp) / "kill"
        injector = FaultInjector(
            [
                FaultSpec(
                    stage="journal_commit",
                    error="model",
                    nth_calls=(max(1, num_segments // 2),),
                )
            ],
            seed=0,
        )
        killed = False
        try:
            model.run_journaled(
                texts,
                kill_dir,
                segment_items=segment_items,
                fault_injector=injector,
            )
        except ReproError:
            killed = True
        resumed = journaled(kill_dir)

        pooled = journaled(Path(tmp) / "pooled", workers=2)

    overhead = timing["overhead_ratio"]
    return {
        "kind": task.kind,
        "texts": len(texts),
        "segments": num_segments,
        "segment_items": segment_items,
        "rounds": task_rounds,
        "plain_seconds": plain_seconds,
        "journaled_seconds": journaled_seconds,
        "monolithic_seconds": monolithic_seconds,
        "overhead_ratio": overhead,
        "overhead_ratio_median": timing["overhead_ratio_median"],
        "monolithic_ratio": (
            journaled_seconds / monolithic_seconds
            if monolithic_seconds > 0
            else 1.0
        ),
        "texts_per_second": (
            len(texts) / journaled_seconds if journaled_seconds > 0 else 0.0
        ),
        "overhead_ok": overhead < OVERHEAD_BOUND,
        "killed_mid_run": killed,
        "kill_resume_identical": json.dumps(resumed) == json.dumps(baseline),
        "workers2_identical": json.dumps(pooled) == json.dumps(baseline),
    }


def run_durable_bench() -> dict:
    """Measure journal overhead and re-prove the identities in-bench."""
    repeat = env_int("REPRO_BENCH_DURABLE_REPEAT", 48)
    rounds = env_int("REPRO_BENCH_DURABLE_ROUNDS", 5)
    segment_items = env_int("REPRO_BENCH_DURABLE_SEGMENT", 96)
    per_task = {
        name: _bench_one_task(
            name, repeat * scale, rounds, segment_items * scale
        )
        for name, scale in BENCH_TASKS
    }
    report = {
        "config": {
            "repeat": repeat,
            "rounds": rounds,
            "segment_items": segment_items,
            "overhead_bound": OVERHEAD_BOUND,
            "profile": "tiny",
        },
        "cpu_count": os.cpu_count() or 1,
        "tasks": per_task,
        "overhead_ok": all(t["overhead_ok"] for t in per_task.values()),
        "all_identical": all(
            t["kill_resume_identical"] and t["workers2_identical"]
            for t in per_task.values()
        ),
    }
    RESULT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    return report


@pytest.mark.benchmark(group="durable")
@pytest.mark.durable
def test_durable_runs_overhead(benchmark):
    report = benchmark.pedantic(run_durable_bench, iterations=1, rounds=1)
    print()
    print(json.dumps(report, indent=2))
    for entry in report["tasks"].values():
        assert entry["killed_mid_run"] is True
        assert entry["kill_resume_identical"] is True
        assert entry["workers2_identical"] is True
    # The journal must stay effectively free on the clean path.
    assert report["overhead_ok"], (
        "journal overhead exceeded the 5% clean-path bound: "
        + json.dumps(
            {k: v["overhead_ratio"] for k, v in report["tasks"].items()}
        )
    )


if __name__ == "__main__":
    print(json.dumps(run_durable_bench(), indent=2))
