"""Figure 4 (target-label panel): per-field F1 vs annotation availability.

The paper observes that per-field effectiveness tracks how much annotated
data each field has: Action (85% available) scores highest; Baseline (14%)
and Deadline (34%) score lower. We train the default extractor once on the
Sustainability Goals reconstruction and report per-field F1 next to the
field's availability.

Expected shape: Action among the best-extracted fields; availability and
F1 positively related across fields (Deadline is an exception in both the
paper and here — years are easy to spot even with fewer examples).
"""

from __future__ import annotations

import pytest

from benchmarks.common import make_goalspotter_extractor
from repro.datasets.base import train_test_split
from repro.eval import evaluate_extractions, render_table
from repro.eval.figures import render_bars


@pytest.mark.benchmark(group="figure4")
def test_figure4_target_labels(benchmark, sustainability_goals):
    availability = sustainability_goals.field_availability()
    train, test = train_test_split(sustainability_goals, 0.2, seed=0)

    def run():
        extractor = make_goalspotter_extractor(seed=0)
        extractor.fit(train.objectives)
        predictions = extractor.extract_batch(
            [o.text for o in test.objectives]
        )
        return evaluate_extractions(
            predictions,
            [o.details for o in test.objectives],
            sustainability_goals.fields,
        )

    report = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for field in sustainability_goals.fields:
        precision, recall, f1 = report.field_metrics(field)
        rows.append(
            [
                field,
                f"{availability[field]:.0%}",
                f"{precision:.2f}",
                f"{recall:.2f}",
                f"{f1:.2f}",
            ]
        )
    print()
    print(
        render_table(
            ["Field", "Availability", "P", "R", "F1"],
            rows,
            title="Figure 4 — effect of the target label",
        )
    )
    print()
    print(
        render_bars(
            {f: report.field_f1(f) for f in sustainability_goals.fields},
            title="F1 per target label",
            maximum=1.0,
        )
    )
    # Shape: Action is extracted at least as well as the scarce Baseline
    # field is *relative to availability*; all fields learn something.
    assert report.field_f1("Action") > 0.5
    assert all(
        report.field_f1(field) > 0.2
        for field in sustainability_goals.fields
    )
