"""Fleet-serving benchmark: replica scaling, bounded tails, chaos kill.

Drives a :class:`repro.serve.FleetRouter` over a *simulated-service*
backend — each request sleeps a fixed per-text service time and returns a
record that is a pure function of its text. Real model forward passes are
GIL-bound, so thread-replicas cannot show capacity scaling on a
single-core host; a sleep-based service is IO-shaped, which is exactly
the regime where replication pays, and the sleep scales with batch rows
so micro-batching cannot fake extra capacity. Three claims, all asserted
in-bench:

* **scaling** — at a fixed open-loop offered load above single-replica
  capacity, completed requests/second increases strictly monotonically
  from 1 to 2 to 4 replicas (shedding keeps the experiment finite);
* **bounded tails** — client-observed p99 stays under a fixed bound at
  every replica count (the bounded admission queue is what caps it);
* **chaos** — with 4 replicas, a deterministically injected
  ``replica_crash`` kills one replica mid-storm; zero accepted requests
  are lost (completed + rejected == submitted, failed == 0) and every
  completed result is bitwise-identical to a 1-replica no-chaos
  reference run.

Writes ``BENCH_fleet.json`` at the repo root.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_fleet.py

or under pytest (``pytest benchmarks/bench_fleet.py -s``).

Knobs: ``REPRO_BENCH_FLEET_REQUESTS`` (requests per sweep cell, default
600), ``REPRO_BENCH_FLEET_RATE`` (offered load in req/s, default 1200),
``REPRO_BENCH_FLEET_SERVICE_MS`` (service time per text, default 4 ms).
"""

from __future__ import annotations

import hashlib
import json
import time
from pathlib import Path

import pytest

from benchmarks.common import env_float, env_int
from repro.runtime.resilience import FaultInjector, FaultSpec
from repro.serve.engine import ServingConfig
from repro.serve.fleet import FleetConfig, FleetRouter
from repro.serve.loadgen import LoadLevel, run_load_level

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_fleet.json"

SCHEMA_VERSION = 1
P99_BOUND_SECONDS = 1.0
REPLICA_SWEEP = (1, 2, 4)
WORKERS_PER_REPLICA = 2


def service_record(text: str) -> dict:
    """The deterministic payload the simulated service returns per text."""
    digest = hashlib.sha256(text.encode("utf-8")).hexdigest()
    return {"text_sha256": digest, "length": str(len(text))}


class SimulatedService:
    """An extractor-shaped backend with a fixed per-text service time.

    Sleeping scales with the number of texts, so serving a micro-batch of
    eight requests costs eight service times — batching amortizes queue
    overhead, not compute, keeping per-replica capacity honest.
    """

    def __init__(self, service_seconds: float) -> None:
        self.service_seconds = service_seconds

    def extract_batch(self, texts):
        time.sleep(self.service_seconds * len(texts))
        return [service_record(text) for text in texts]


def build_fleet(
    replicas: int,
    service_seconds: float,
    fault_injector: FaultInjector | None = None,
    queue_depth: int = 64,
) -> FleetRouter:
    return FleetRouter(
        extractor=SimulatedService(service_seconds),
        config=FleetConfig(
            replicas=replicas,
            policy="least-loaded",
            engine=ServingConfig(
                num_workers=WORKERS_PER_REPLICA,
                max_batch_requests=8,
                max_wait_ms=1.0,
                queue_depth=queue_depth,
            ),
        ),
        fault_injector=fault_injector,
    )


def run_sweep_cell(
    replicas: int,
    *,
    requests: int,
    rate: float,
    service_seconds: float,
    seed: int,
) -> dict:
    """One offered-load run at a replica count; client-observed summary."""
    texts = [f"objective payload {index:04d}" for index in range(64)]
    level = LoadLevel(
        name=f"open-{rate:.0f}rps-x{replicas}",
        mode="open",
        offered=rate,
        num_requests=requests,
    )
    router = build_fleet(replicas, service_seconds)
    with router:
        started = time.perf_counter()
        report = run_load_level(router, texts, level, kind="extract", seed=seed)
        elapsed = time.perf_counter() - started
        counters = router.metrics_snapshot()["router"]["counters"]
    completed = int(counters.get("completed", 0))
    return {
        "replicas": replicas,
        "offered_rps": rate,
        "requests": requests,
        "completed": completed,
        "rejected": int(counters.get("rejected", 0)),
        "failed": int(counters.get("failed", 0)),
        "elapsed_seconds": elapsed,
        "completed_rps": completed / max(elapsed, 1e-9),
        "client_p50_seconds": report["latency"]["p50"],
        "client_p99_seconds": report["latency"]["p99"],
    }


def run_chaos_storm(
    *,
    requests: int,
    service_seconds: float,
    kill_at_dispatch: int,
    seed: int,
) -> dict:
    """Kill one of four replicas mid-storm; account for every request.

    The injected ``replica_crash`` fires on the ``kill_at_dispatch``-th
    routing decision, so the kill point is a pure function of the spec —
    rerunning the bench reruns the identical storm.
    """
    texts = [f"objective payload {index:04d}" for index in range(64)]
    injector = FaultInjector(
        [
            FaultSpec(
                stage="replica_crash",
                error="crash",
                rate=0.0,
                nth_calls=(kill_at_dispatch,),
            )
        ],
        seed=seed,
    )
    router = build_fleet(4, service_seconds, fault_injector=injector)
    futures = []
    submitted = rejected = 0
    with router:
        for index in range(requests):
            submitted += 1
            try:
                futures.append(
                    (index, router.submit(kind="extract", texts=texts[index % len(texts)]))
                )
            except Exception:  # noqa: BLE001 — shed requests are accounted
                rejected += 1
        resolved = []
        for index, future in futures:
            resolved.append((index, future.result(timeout=60.0)))
        counters = router.metrics_snapshot()["router"]["counters"]
        health = router.health_states()
    # Bitwise identity: a 1-replica, no-chaos fleet serving the same
    # accepted requests must produce the exact same values.
    # The reference run is about *values*, not load behaviour: give it a
    # queue deep enough to accept every request up front.
    reference = build_fleet(1, service_seconds, queue_depth=len(futures) + 8)
    with reference:
        reference_futures = [
            (index, reference.submit(kind="extract", texts=texts[index % len(texts)]))
            for index, _ in futures
        ]
        reference_resolved = [
            (index, future.result(timeout=120.0))
            for index, future in reference_futures
        ]
    bitwise_identical = [
        (index, result.values) for index, result in resolved
    ] == [(index, result.values) for index, result in reference_resolved]
    completed = int(counters.get("completed", 0))
    failed = int(counters.get("failed", 0))
    return {
        "replicas": 4,
        "kill_at_dispatch": kill_at_dispatch,
        "submitted": submitted,
        "accepted": len(futures),
        "completed": completed,
        "rejected": rejected,
        "failed": failed,
        "replicas_killed": int(counters.get("replicas_killed", 0)),
        "redispatched": int(counters.get("failover.redispatched", 0)),
        "zero_lost": completed == len(futures) and failed == 0,
        "bitwise_identical": bitwise_identical,
        "health": health,
    }


def run_fleet_benchmark(write_report: bool = True) -> dict:
    requests = env_int("REPRO_BENCH_FLEET_REQUESTS", 600)
    rate = env_float("REPRO_BENCH_FLEET_RATE", 1200.0)
    service_seconds = (
        env_float("REPRO_BENCH_FLEET_SERVICE_MS", 4.0) / 1000.0
    )
    seed = 0
    sweep = [
        run_sweep_cell(
            replicas,
            requests=requests,
            rate=rate,
            service_seconds=service_seconds,
            seed=seed,
        )
        for replicas in REPLICA_SWEEP
    ]
    by_replicas = {
        str(cell["replicas"]): cell["completed_rps"] for cell in sweep
    }
    rates = [cell["completed_rps"] for cell in sweep]
    monotonic = all(left < right for left, right in zip(rates, rates[1:]))
    p99s = [cell["client_p99_seconds"] for cell in sweep]
    chaos = run_chaos_storm(
        requests=max(64, requests // 4),
        service_seconds=service_seconds,
        kill_at_dispatch=max(8, requests // 16),
        seed=seed,
    )
    report = {
        "schema_version": SCHEMA_VERSION,
        "config": {
            "offered_rps": rate,
            "requests_per_cell": requests,
            "service_ms_per_text": service_seconds * 1000.0,
            "workers_per_replica": WORKERS_PER_REPLICA,
            "replica_sweep": list(REPLICA_SWEEP),
            "seed": seed,
        },
        "sweep": sweep,
        "scaling": {
            "completed_rps_by_replicas": by_replicas,
            "monotonic": monotonic,
            "p99_bound_seconds": P99_BOUND_SECONDS,
            "max_p99_seconds": max(p99s),
            "p99_within_bound": max(p99s) < P99_BOUND_SECONDS,
        },
        "chaos": chaos,
    }
    if write_report:
        RESULT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    return report


@pytest.mark.benchmark(group="fleet")
def test_fleet_scaling_and_chaos(benchmark):
    report = benchmark.pedantic(run_fleet_benchmark, rounds=1, iterations=1)
    print()
    print(json.dumps(report["scaling"], indent=2))
    print(json.dumps({k: v for k, v in report["chaos"].items() if k != "health"}, indent=2))
    scaling = report["scaling"]
    assert scaling["monotonic"], (
        "completed-rps did not increase monotonically with replica count: "
        f"{scaling['completed_rps_by_replicas']}"
    )
    assert scaling["p99_within_bound"], (
        f"client p99 {scaling['max_p99_seconds']:.3f}s exceeded the "
        f"{scaling['p99_bound_seconds']}s bound"
    )
    chaos = report["chaos"]
    assert chaos["replicas_killed"] == 1, "chaos kill did not fire"
    assert chaos["zero_lost"], (
        "accepted requests were lost under the chaos kill: "
        f"{json.dumps({k: v for k, v in chaos.items() if k != 'health'})}"
    )
    assert chaos["bitwise_identical"], (
        "chaos-storm outputs diverged from the 1-replica reference"
    )


if __name__ == "__main__":
    print(json.dumps(run_fleet_benchmark(), indent=2))
