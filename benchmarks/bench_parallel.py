"""Throughput scaling of the data-parallel sharded corpus runtime.

The parallel runtime (:mod:`repro.runtime.parallel`) promises two things:
``workers=N`` is **bitwise-identical** to ``workers=1``, and on a machine
with enough cores it is substantially faster (the acceptance bar is a
>= 2.5x speedup with 4 workers on a 4+-core machine). This bench measures
both on one trained pipeline and a synthetic deployment corpus, and writes
``BENCH_parallel.json`` at the repo root:

* sequential baseline (``pipeline.process_reports``, one process);
* parallel runs at each worker count in the ladder (default 1, 2, 4
  capped at the machine's cores; override with ``REPRO_BENCH_WORKERS``,
  e.g. ``REPRO_BENCH_WORKERS=1,2,4,8``);
* per-run record identity against the baseline (exact, scores included);
* shard balance and broadcast cost from the merged run stats.

The speedup assertion is conditional on the host: on fewer than 4 cores
the numbers are still recorded (``cpu_count`` is in the report) but the
2.5x bar is not enforced — a 1-core container cannot exhibit parallel
speedup, only parallel correctness.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_parallel.py

or under pytest (``pytest benchmarks/bench_parallel.py -s``).

Knobs: ``REPRO_BENCH_WORKERS`` (comma-separated worker ladder),
``REPRO_BENCH_EPOCHS`` (training epochs, default 2),
``REPRO_BENCH_REPORTS`` (corpus size, default 12),
``REPRO_BENCH_PAGES`` (pages per report, default 10).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from benchmarks.common import env_int
from repro.core.extractor import ExtractorConfig, WeakSupervisionExtractor
from repro.datasets.generator import ObjectiveGenerator
from repro.datasets.reports import ReportGenerator
from repro.deploy import build_trained_pipeline
from repro.goalspotter.detector import DetectorConfig
from repro.models.training import FineTuneConfig
from repro.runtime.parallel import process_reports_parallel

SPEEDUP_TARGET = 2.5  # 4 workers vs. 1, enforced on 4+-core machines only
SPEEDUP_WORKERS = 4
RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_parallel.json"


def _build_pipeline(seed: int, epochs: int):
    objectives = ObjectiveGenerator(seed=seed).generate_many(120)
    extractor = WeakSupervisionExtractor(
        ExtractorConfig(
            finetune=FineTuneConfig(epochs=epochs, learning_rate=1e-3)
        )
    ).fit(objectives)
    return build_trained_pipeline(
        train_dataset=None,
        seed=seed,
        detector_blocks=240,
        detector_config=DetectorConfig(
            finetune=FineTuneConfig(epochs=epochs, learning_rate=1e-3)
        ),
        extractor=extractor,
    )


def _build_corpus(seed: int, num_reports: int, num_pages: int):
    generator = ReportGenerator(seed=seed)
    return [
        generator.generate_report(
            company=f"ParCorp-{index}",
            report_id=f"par-{index:03d}",
            num_pages=num_pages,
            num_objectives=max(4, num_pages // 3),
        )
        for index in range(num_reports)
    ]


def _record_key(record):
    return (
        record.company,
        record.report_id,
        record.page,
        record.objective,
        tuple(sorted(record.details.items())),
        record.score,
        record.status,
    )


def _worker_ladder(cpu_count: int) -> list[int]:
    spec = os.environ.get("REPRO_BENCH_WORKERS")
    if spec:
        return [int(part) for part in spec.split(",") if part.strip()]
    return sorted({1, min(2, cpu_count), min(SPEEDUP_WORKERS, cpu_count)})


def run_parallel_scaling(
    epochs: int | None = None,
    seed: int = 0,
    num_reports: int | None = None,
    num_pages: int | None = None,
) -> dict:
    """Measure workers=N vs. sequential throughput and record identity."""
    epochs = epochs or env_int("REPRO_BENCH_EPOCHS", 2)
    num_reports = num_reports or env_int("REPRO_BENCH_REPORTS", 12)
    num_pages = num_pages or env_int("REPRO_BENCH_PAGES", 10)
    cpu_count = os.cpu_count() or 1

    pipeline = _build_pipeline(seed=seed, epochs=epochs)
    corpus = _build_corpus(
        seed=seed + 1, num_reports=num_reports, num_pages=num_pages
    )

    # Sequential baseline (warm caches first so BPE memo state is equal).
    pipeline.process_reports(corpus)
    start = time.perf_counter()
    baseline_records = pipeline.process_reports(corpus)
    baseline_seconds = time.perf_counter() - start
    baseline_keys = [_record_key(record) for record in baseline_records]
    blocks = pipeline.last_run_stats["blocks"]

    runs = []
    for workers in _worker_ladder(cpu_count):
        start = time.perf_counter()
        records = process_reports_parallel(pipeline, corpus, workers=workers)
        elapsed = time.perf_counter() - start
        stats = pipeline.last_run_stats
        runs.append(
            {
                "workers": workers,
                "num_shards": stats["num_shards"],
                "seconds": elapsed,
                "blocks_per_second": stats["blocks_per_second"],
                "speedup_vs_sequential": (
                    baseline_seconds / elapsed if elapsed > 0 else 0.0
                ),
                "broadcast_seconds": stats["broadcast_seconds"],
                "broadcast_bytes": stats["broadcast_bytes"],
                "shard_wall_seconds": stats["shard_wall_seconds"],
                "records_identical": (
                    [_record_key(record) for record in records]
                    == baseline_keys
                ),
            }
        )

    speedup_run = next(
        (run for run in runs if run["workers"] == SPEEDUP_WORKERS), None
    )
    report = {
        "config": {
            "epochs": epochs,
            "seed": seed,
            "num_reports": num_reports,
            "num_pages": num_pages,
            "blocks": blocks,
        },
        "cpu_count": cpu_count,
        "sequential_seconds": baseline_seconds,
        "records": len(baseline_records),
        "runs": runs,
        "speedup_target": SPEEDUP_TARGET,
        "speedup_workers": SPEEDUP_WORKERS,
        "speedup_measured": (
            speedup_run["speedup_vs_sequential"] if speedup_run else None
        ),
        # The 2.5x bar only binds where the hardware can express it.
        "speedup_enforced": cpu_count >= SPEEDUP_WORKERS,
        "all_identical": all(run["records_identical"] for run in runs),
    }
    RESULT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    return report


@pytest.mark.benchmark(group="runtime")
@pytest.mark.parallel
def test_parallel_scaling(benchmark):
    report = benchmark.pedantic(run_parallel_scaling, iterations=1, rounds=1)
    print()
    print(json.dumps(report, indent=2))
    assert report["records"] > 0
    # The headline guarantee holds on any machine: bitwise identity.
    assert report["all_identical"]
    if report["speedup_enforced"]:
        assert report["speedup_measured"] >= SPEEDUP_TARGET, (
            f"{SPEEDUP_WORKERS}-worker speedup "
            f"{report['speedup_measured']:.2f}x below "
            f"{SPEEDUP_TARGET}x target on a {report['cpu_count']}-core host"
        )


if __name__ == "__main__":
    print(json.dumps(run_parallel_scaling(), indent=2))
